// Parallel + layout determinism battery: the MemGrid parallel kernels
// (counting-scatter Build, rank-range SelfJoin, ApplyUpdates
// classification) must produce results ELEMENT-FOR-ELEMENT identical to
// the serial paths at every thread count, on every dataset shape and under
// EVERY cell layout (rowmajor / morton / hilbert) — the properties that
// make "--threads=N" and "--layout=L" pure performance knobs. Across
// layouts the storage (and therefore emission) order legitimately differs,
// so cross-layout agreement is asserted on sorted results and on
// order-independent observables (pair sets, counter totals, update stats).
// Also unit-tests the static-partition thread pool itself
// (common/parallel.h).
//
// This suite is the intended TSan workload (ctest label "determinism"):
//   cmake -B build-tsan -S . -DSIMSPATIAL_SANITIZE=thread
//   cmake --build build-tsan -j && cd build-tsan && ctest -L determinism

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "common/bruteforce.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/memgrid.h"
#include "datagen/neuron.h"

namespace simspatial::core {
namespace {

using datagen::GenerateClusteredBoxes;
using datagen::GenerateUniformBoxes;

const AABB kUniverse(Vec3(0, 0, 0), Vec3(100, 100, 100));

// Thread counts the battery sweeps; 0 is the serial reference. 8 on a
// smaller machine oversubscribes the cores, which is exactly the kind of
// scheduling chaos determinism must survive.
const std::uint32_t kThreadCounts[] = {1, 2, 8};

// Cell layouts the battery crosses with the thread counts.
const CellLayout kLayouts[] = {CellLayout::kRowMajor, CellLayout::kMorton,
                               CellLayout::kHilbert};

struct NamedDataset {
  const char* name;
  std::vector<Element> elements;
};

std::vector<NamedDataset> BatteryDatasets() {
  std::vector<NamedDataset> ds;
  ds.push_back({"uniform", GenerateUniformBoxes(4096, kUniverse, 0.1f, 0.8f)});
  ds.push_back({"clustered",
                GenerateClusteredBoxes(4096, kUniverse, 8, 4.0f, 0.1f, 0.6f)});
  // Degenerate: every centre in one cell (cell_size below pins cell (0,0,0)
  // region with the whole population).
  {
    Rng rng(41);
    std::vector<Element> one_cell;
    for (ElementId i = 0; i < 3000; ++i) {
      const Vec3 c(rng.Uniform(0.5f, 3.5f), rng.Uniform(0.5f, 3.5f),
                   rng.Uniform(0.5f, 3.5f));
      one_cell.emplace_back(i, AABB::FromCenterHalfExtent(c, 0.2f));
    }
    ds.push_back({"one-cell", std::move(one_cell)});
  }
  ds.push_back({"empty", {}});
  return ds;
}

// Shard counts the battery crosses with layouts and thread counts; 1 is
// the single-block reference.
const std::uint32_t kShardCounts[] = {1, 2, 3, 8};

MemGrid MakeGrid(const std::vector<Element>& elements, std::uint32_t threads,
                 float cell_size = 4.0f,
                 CellLayout layout = CellLayout::kRowMajor,
                 std::uint32_t shards = 1, std::uint32_t compact = 0,
                 RangeDecomp decomp = RangeDecomp::kRuns) {
  MemGrid g(kUniverse, MemGridConfig{.cell_size = cell_size,
                                     .threads = threads,
                                     .layout = layout,
                                     .shards = shards,
                                     .compact_regions_per_batch = compact,
                                     .decomp = decomp});
  g.Build(elements);
  return g;
}

/// Ids in storage order: a full-universe range query streams the slack-CSR
/// block in cell-region order, so equal outputs mean equal *layouts*, not
/// just equal sets.
std::vector<ElementId> LayoutOrder(const MemGrid& g) {
  std::vector<ElementId> out;
  g.RangeQuery(kUniverse.Inflated(10.0f), &out);
  return out;
}

// --- Thread pool ----------------------------------------------------------

TEST(ThreadPoolTest, RunExecutesEverySlotExactlyOnce) {
  for (const std::size_t slots : {1u, 2u, 5u, 16u}) {
    std::vector<std::atomic<int>> hits(slots);
    for (auto& h : hits) h = 0;
    par::ThreadPool::Global().Run(slots,
                                  [&](std::size_t s) { hits[s].fetch_add(1); });
    for (std::size_t s = 0; s < slots; ++s) {
      EXPECT_EQ(hits[s].load(), 1) << "slot " << s << " of " << slots;
    }
  }
}

TEST(ThreadPoolTest, ParallelChunksCoversRangeExactlyOnce) {
  for (const std::size_t chunks : {1u, 2u, 3u, 8u, 13u}) {
    for (const std::size_t n : {0u, 1u, 7u, 100u, 1047u}) {
      std::vector<std::atomic<int>> seen(n);
      for (auto& s : seen) s = 0;
      par::ParallelChunks(chunks, n,
                          [&](std::size_t, std::size_t b, std::size_t e) {
                            for (std::size_t i = b; i < e; ++i) {
                              seen[i].fetch_add(1);
                            }
                          });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(seen[i].load(), 1)
            << "i=" << i << " chunks=" << chunks << " n=" << n;
      }
    }
  }
}

TEST(ThreadPoolTest, SlotExceptionPropagatesAfterAllSlotsFinish) {
  std::vector<std::atomic<int>> hits(8);
  for (auto& h : hits) h = 0;
  EXPECT_THROW(par::ThreadPool::Global().Run(8,
                                             [&](std::size_t s) {
                                               hits[s].fetch_add(1);
                                               if (s == 3) {
                                                 throw std::runtime_error(
                                                     "slot failure");
                                               }
                                             }),
               std::runtime_error);
  // Run must not unwind until every slot has finished touching `hits`.
  for (std::size_t s = 0; s < hits.size(); ++s) {
    EXPECT_EQ(hits[s].load(), 1) << "slot " << s;
  }
  // The pool stays usable after a failed dispatch.
  std::atomic<int> after{0};
  par::ThreadPool::Global().Run(4, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 4);
}

TEST(ThreadPoolTest, LaterSlotFailuresAreCountedNotLost) {
  // A local pool, so the process-wide counter of the Global pool (exposed
  // through MemGridShape::pool_suppressed_errors) stays untouched.
  par::ThreadPool pool;
  EXPECT_EQ(pool.total_suppressed_errors(), 0u);
  EXPECT_THROW(pool.Run(6,
                        [&](std::size_t) {
                          throw std::runtime_error("every slot fails");
                        }),
               std::runtime_error);
  // One failure rethrown, the other five at least counted.
  EXPECT_EQ(pool.total_suppressed_errors(), 5u);
}

TEST(ThreadPoolTest, SerialFallbackEngagesAfterRepeatedFailuresAndHeals) {
  par::ThreadPool pool;
  for (std::size_t i = 0; i < par::ThreadPool::kSerialFallbackThreshold;
       ++i) {
    EXPECT_FALSE(pool.serial_fallback_active());
    EXPECT_THROW(pool.Run(4,
                          [&](std::size_t s) {
                            if (s == 0) throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
  }
  EXPECT_TRUE(pool.serial_fallback_active());
  // Degraded dispatch still runs every slot (on the calling thread) with
  // the same error semantics...
  const auto self = std::this_thread::get_id();
  std::vector<int> hits(4, 0);
  bool all_on_caller = true;
  pool.Run(4, [&](std::size_t s) {
    hits[s] += 1;
    all_on_caller = all_on_caller && std::this_thread::get_id() == self;
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1, 1}));
  EXPECT_TRUE(all_on_caller);
  // ...and one clean dispatch heals the pool back to parallel fan-out.
  EXPECT_FALSE(pool.serial_fallback_active());
}

TEST(ThreadPoolTest, ChunkCountRespectsGrainAndBounds) {
  EXPECT_EQ(par::ChunkCount(0, 10000, 100), 1u);
  EXPECT_EQ(par::ChunkCount(1, 10000, 100), 1u);
  EXPECT_EQ(par::ChunkCount(8, 0, 100), 1u);
  EXPECT_EQ(par::ChunkCount(8, 10000, 1024), 8u);
  EXPECT_EQ(par::ChunkCount(8, 3000, 1024), 2u);   // grain-limited
  EXPECT_EQ(par::ChunkCount(8, 1000, 1024), 1u);   // below one grain
  EXPECT_EQ(par::ChunkCount(4, 100, 1), 4u);
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(par::ResolveThreads(0), 0u);
  EXPECT_EQ(par::ResolveThreads(3), 3u);
  EXPECT_GE(par::ResolveThreads(par::kThreadsAuto), 1u);
}

// --- Build determinism ----------------------------------------------------

TEST(ParallelDeterminismTest, BuildLayoutIdenticalAcrossThreadCounts) {
  for (const NamedDataset& ds : BatteryDatasets()) {
    // Cross-layout reference: the rowmajor serial build's element SET.
    const std::vector<ElementId> want_sorted = [&] {
      auto ids = LayoutOrder(MakeGrid(ds.elements, 0));
      std::sort(ids.begin(), ids.end());
      return ids;
    }();
    for (const CellLayout layout : kLayouts) {
      // Within a layout, the parallel build must reproduce the serial
      // build's layout BYTES (LayoutOrder streams the block in storage
      // order, so equal outputs mean equal layouts).
      const MemGrid serial = MakeGrid(ds.elements, 0, 4.0f, layout);
      const std::vector<ElementId> want = LayoutOrder(serial);
      const MemGridShape want_shape = serial.Shape();
      EXPECT_EQ(want_shape.layout, layout) << ds.name;
      // Gap-free profile fresh from Build: ONE contiguous stream covers
      // the universe, whatever the rank order.
      EXPECT_EQ(want_shape.layout_runs, ds.elements.empty() ? 0u : 1u)
          << ds.name << " layout=" << ToString(layout);
      {
        auto sorted = want;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(sorted, want_sorted)
            << ds.name << " layout=" << ToString(layout)
            << ": layouts must hold the same element set";
      }
      for (const std::uint32_t t : kThreadCounts) {
        const MemGrid g = MakeGrid(ds.elements, t, 4.0f, layout);
        std::string err;
        ASSERT_TRUE(g.CheckInvariants(&err))
            << ds.name << " layout=" << ToString(layout) << " t=" << t
            << ": " << err;
        EXPECT_EQ(LayoutOrder(g), want)
            << ds.name << " layout=" << ToString(layout) << " t=" << t;
        const MemGridShape shape = g.Shape();
        EXPECT_EQ(shape.occupied_cells, want_shape.occupied_cells)
            << ds.name << " t=" << t;
        EXPECT_EQ(shape.slack_slots, want_shape.slack_slots)
            << ds.name << " t=" << t;
        EXPECT_EQ(shape.max_half_extent, want_shape.max_half_extent)
            << ds.name << " t=" << t;
        EXPECT_EQ(shape.layout_runs, want_shape.layout_runs)
            << ds.name << " t=" << t;
      }
    }
  }
}

// Shape()/CheckInvariants layout observability: a fresh gap-free build is
// ONE contiguous stream in pristine rank order; a forced region relocation
// splits the stream (observable via layout_runs) without breaking any
// structural invariant; the padded profile streams one run per occupied
// cell because per-cell slack breaks storage adjacency.
TEST(ParallelDeterminismTest, LayoutRunsAndPristineOrderObservable) {
  const auto elems = GenerateUniformBoxes(2048, kUniverse, 0.1f, 0.6f);
  for (const CellLayout layout : kLayouts) {
    MemGrid g = MakeGrid(elems, 0, 4.0f, layout);
    EXPECT_EQ(g.Shape().layout, layout);
    EXPECT_EQ(g.Shape().layout_runs, 1u) << ToString(layout);
    std::string err;
    ASSERT_TRUE(g.CheckInvariants(&err)) << ToString(layout) << ": " << err;
    // Gap-free regions have no slack, so this insert relocates its
    // destination region to the block tail (id 2048 = one past the
    // generated dense id range — no slot-map blowup).
    g.Insert(Element(2048, AABB::FromCenterHalfExtent(
                               Vec3(50.0f, 50.0f, 50.0f), 0.3f)));
    ASSERT_TRUE(g.CheckInvariants(&err)) << ToString(layout) << ": " << err;
    EXPECT_GT(g.Shape().layout_runs, 1u) << ToString(layout);

    MemGrid padded(kUniverse, MemGridConfig{.cell_size = 4.0f,
                                            .min_slack = 2,
                                            .threads = 0,
                                            .layout = layout});
    padded.Build(elems);
    const MemGridShape s = padded.Shape();
    EXPECT_EQ(s.layout_runs, s.occupied_cells) << ToString(layout);
    ASSERT_TRUE(padded.CheckInvariants(&err)) << ToString(layout) << ": "
                                              << err;
  }
}

TEST(ParallelDeterminismTest, RangeAndKnnIdenticalAfterParallelBuild) {
  for (const NamedDataset& ds : BatteryDatasets()) {
    const MemGrid rowmajor_serial = MakeGrid(ds.elements, 0);
    for (const CellLayout layout : kLayouts) {
      const MemGrid serial = MakeGrid(ds.elements, 0, 4.0f, layout);
      for (const std::uint32_t t : kThreadCounts) {
        const MemGrid g = MakeGrid(ds.elements, t, 4.0f, layout);
        Rng rng(57);
        for (int q = 0; q < 20; ++q) {
          const AABB query = AABB::FromCenterHalfExtent(
              rng.PointIn(kUniverse), rng.Uniform(0.5f, 12.0f));
          std::vector<ElementId> got, want, rowmajor_want;
          g.RangeQuery(query, &got);
          serial.RangeQuery(query, &want);
          ASSERT_EQ(got, want)
              << ds.name << " layout=" << ToString(layout) << " t=" << t
              << " q" << q;
          // Across layouts only the emission order may differ.
          rowmajor_serial.RangeQuery(query, &rowmajor_want);
          std::sort(got.begin(), got.end());
          std::sort(rowmajor_want.begin(), rowmajor_want.end());
          ASSERT_EQ(got, rowmajor_want)
              << ds.name << " layout=" << ToString(layout) << " t=" << t
              << " q" << q;
        }
        for (int q = 0; q < 10; ++q) {
          const Vec3 p = rng.PointIn(kUniverse);
          std::vector<ElementId> got, want, rowmajor_want;
          g.KnnQuery(p, 9, &got);
          serial.KnnQuery(p, 9, &want);
          ASSERT_EQ(got, want)
              << ds.name << " layout=" << ToString(layout) << " t=" << t
              << " q" << q;
          // kNN output is distance-ordered (ties by id) — identical
          // ELEMENT-FOR-ELEMENT across layouts, not just as a set.
          rowmajor_serial.KnnQuery(p, 9, &rowmajor_want);
          ASSERT_EQ(got, rowmajor_want)
              << ds.name << " layout=" << ToString(layout) << " t=" << t
              << " q" << q;
        }
      }
    }
  }
}

// --- SelfJoin determinism -------------------------------------------------

TEST(ParallelDeterminismTest, SelfJoinPairsAndCountersIdentical) {
  for (const NamedDataset& ds : BatteryDatasets()) {
    // Cross-layout references (rowmajor serial): the sorted pair set and
    // the counter totals are layout-independent — every layout enumerates
    // the same cell pairs, only in a different order.
    for (const float eps : {0.0f, 0.5f}) {
      std::vector<std::pair<ElementId, ElementId>> rowmajor_sorted;
      QueryCounters rowmajor_c;
      MakeGrid(ds.elements, 0).SelfJoin(eps, &rowmajor_sorted, &rowmajor_c);
      SortPairs(&rowmajor_sorted);
      for (const CellLayout layout : kLayouts) {
        const MemGrid serial = MakeGrid(ds.elements, 0, 4.0f, layout);
        std::vector<std::pair<ElementId, ElementId>> want;
        QueryCounters want_c;
        serial.SelfJoin(eps, &want, &want_c);
        {
          auto sorted = want;
          SortPairs(&sorted);
          ASSERT_EQ(sorted, rowmajor_sorted)
              << ds.name << " layout=" << ToString(layout)
              << " eps=" << eps;
          EXPECT_EQ(want_c.element_tests, rowmajor_c.element_tests)
              << ds.name << " layout=" << ToString(layout);
          EXPECT_EQ(want_c.nodes_visited, rowmajor_c.nodes_visited)
              << ds.name << " layout=" << ToString(layout);
          EXPECT_EQ(want_c.results, rowmajor_c.results)
              << ds.name << " layout=" << ToString(layout);
        }
        for (const std::uint32_t t : kThreadCounts) {
          const MemGrid g = MakeGrid(ds.elements, t, 4.0f, layout);
          std::vector<std::pair<ElementId, ElementId>> got;
          QueryCounters got_c;
          g.SelfJoin(eps, &got, &got_c);
          // Element-for-element: parallel rank ranges must reproduce the
          // serial emission ORDER, not just the pair set.
          ASSERT_EQ(got, want) << ds.name << " layout=" << ToString(layout)
                               << " t=" << t << " eps=" << eps;
          EXPECT_EQ(got_c.element_tests, want_c.element_tests)
              << ds.name << " layout=" << ToString(layout) << " t=" << t;
          EXPECT_EQ(got_c.nodes_visited, want_c.nodes_visited)
              << ds.name << " layout=" << ToString(layout) << " t=" << t;
          EXPECT_EQ(got_c.results, want_c.results)
              << ds.name << " layout=" << ToString(layout) << " t=" << t;
        }
      }
    }
  }
}

TEST(ParallelDeterminismTest, SelfJoinMatchesBruteForce) {
  const auto elems = GenerateUniformBoxes(2000, kUniverse, 0.2f, 0.8f);
  for (const float eps : {0.0f, 0.5f}) {
    // The O(n^2) reference depends only on eps — hoist it out of the
    // layout x thread sweep.
    auto want = NestedLoopSelfJoin(elems, eps);
    SortPairs(&want);
    for (const CellLayout layout : kLayouts) {
      for (const std::uint32_t t : kThreadCounts) {
        const MemGrid g = MakeGrid(elems, t, /*cell_size=*/2.5f, layout);
        std::vector<std::pair<ElementId, ElementId>> got;
        g.SelfJoin(eps, &got);
        SortPairs(&got);
        EXPECT_EQ(got, want) << "layout=" << ToString(layout) << " t=" << t
                             << " eps=" << eps;
      }
    }
  }
}

// Regression for the widened-reach path (cell_size < 2*max_half_extent +
// eps): matching centres can sit several cells — and therefore several
// worker RANK RANGES — apart, so the partitioning must still assign each
// cross-range pair to exactly one origin cell. Under the curve layouts a
// range boundary can additionally cut straight through a lattice
// neighbourhood, which is exactly what this guards. 3000 elements keeps
// the widened sweep cheaper than the all-pairs fallback, so the rank-range
// path itself runs.
TEST(ParallelDeterminismTest, WidenedReachEmitsCrossRangePairsExactlyOnce) {
  Rng rng(85);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 3000; ++i) {
    elems.emplace_back(i, AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                     rng.Uniform(0.5f, 3.0f)));
  }
  for (const float eps : {0.0f, 1.0f}) {
    // The O(n^2) reference depends only on eps — hoist it out of the
    // layout x thread sweep.
    auto brute = NestedLoopSelfJoin(elems, eps);
    SortPairs(&brute);
    for (const CellLayout layout : kLayouts) {
      const MemGrid serial = MakeGrid(elems, 0, /*cell_size=*/2.0f, layout);
      std::vector<std::pair<ElementId, ElementId>> want;
      serial.SelfJoin(eps, &want);
      for (const std::uint32_t t : kThreadCounts) {
        const MemGrid g = MakeGrid(elems, t, /*cell_size=*/2.0f, layout);
        std::vector<std::pair<ElementId, ElementId>> got;
        g.SelfJoin(eps, &got);
        ASSERT_EQ(got, want) << "layout=" << ToString(layout) << " t=" << t
                             << " eps=" << eps;
        // Exactly once: no duplicates even among pairs whose cells
        // straddle a worker boundary.
        auto sorted = got;
        SortPairs(&sorted);
        ASSERT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                  sorted.end())
            << "duplicate pair at layout=" << ToString(layout)
            << " t=" << t << " eps=" << eps;
        ASSERT_EQ(sorted, brute) << "layout=" << ToString(layout)
                                 << " t=" << t << " eps=" << eps;
      }
    }
  }
}

// --- ApplyUpdates determinism --------------------------------------------

std::vector<ElementUpdate> SeededUpdateBatch(std::vector<Element>* mirror,
                                             Rng* rng) {
  std::vector<ElementUpdate> batch;
  for (Element& e : *mirror) {
    const float dice = rng->NextFloat();
    if (dice < 0.6f) {
      // In-place nudge.
      e.box = e.box.Translated(Vec3(rng->Normal(0, 0.05f),
                                    rng->Normal(0, 0.05f),
                                    rng->Normal(0, 0.05f)));
    } else {
      // Teleport: forces a migration (and region slack churn).
      e.box = AABB::FromCenterHalfExtent(rng->PointIn(kUniverse),
                                         rng->Uniform(0.1f, 0.9f));
    }
    batch.emplace_back(e.id, e.box);
  }
  // Same id twice in one batch (staged-overwrite path) + an unknown id.
  if (!mirror->empty()) {
    Element& dup = (*mirror)[mirror->size() / 2];
    dup.box = AABB::FromCenterHalfExtent(rng->PointIn(kUniverse), 0.4f);
    batch.emplace_back(dup.id, dup.box);
  }
  batch.emplace_back(kInvalidElement, AABB::FromCenterHalfExtent(
                                          Vec3(1, 1, 1), 0.1f));
  return batch;
}

TEST(ParallelDeterminismTest, ApplyUpdatesIdenticalAcrossThreadCounts) {
  const auto elems = GenerateUniformBoxes(4096, kUniverse, 0.1f, 0.8f);
  // Drive, per layout, the serial reference and each thread count through
  // the SAME seeded three-round batch stream; every structural observable
  // must match after every round. The update stats are additionally
  // layout-independent (migration/relayout decisions depend only on cell
  // membership and capacity, never on rank order), so each layout's final
  // stats must agree with rowmajor's.
  MemGridUpdateStats rowmajor_stats;
  for (const CellLayout layout : kLayouts) {
    MemGrid serial = MakeGrid(elems, 0, 4.0f, layout);
    std::vector<MemGrid> grids;
    for (const std::uint32_t t : kThreadCounts) {
      grids.push_back(MakeGrid(elems, t, 4.0f, layout));
    }
    std::vector<Element> mirror = elems;
    Rng rng(99);
    for (int round = 0; round < 3; ++round) {
      // One batch per round; every grid sees the identical batch.
      const auto batch = SeededUpdateBatch(&mirror, &rng);
      const std::size_t want_applied = serial.ApplyUpdates(batch);
      const std::vector<ElementId> want_layout = LayoutOrder(serial);
      const MemGridUpdateStats& ws = serial.update_stats();
      for (std::size_t gi = 0; gi < grids.size(); ++gi) {
        MemGrid& g = grids[gi];
        EXPECT_EQ(g.ApplyUpdates(batch), want_applied)
            << "layout=" << ToString(layout) << " t=" << kThreadCounts[gi]
            << " round " << round;
        std::string err;
        ASSERT_TRUE(g.CheckInvariants(&err))
            << "layout=" << ToString(layout) << " t=" << kThreadCounts[gi]
            << " round " << round << ": " << err;
        ASSERT_EQ(LayoutOrder(g), want_layout)
            << "layout=" << ToString(layout) << " t=" << kThreadCounts[gi]
            << " round " << round;
        const MemGridUpdateStats& s = g.update_stats();
        EXPECT_EQ(s.updates, ws.updates) << "t=" << kThreadCounts[gi];
        EXPECT_EQ(s.in_place, ws.in_place) << "t=" << kThreadCounts[gi];
        EXPECT_EQ(s.migrations, ws.migrations) << "t=" << kThreadCounts[gi];
        EXPECT_EQ(s.relayouts, ws.relayouts) << "t=" << kThreadCounts[gi];
      }
    }
    if (layout == CellLayout::kRowMajor) {
      rowmajor_stats = serial.update_stats();
    } else {
      const MemGridUpdateStats& s = serial.update_stats();
      EXPECT_EQ(s.updates, rowmajor_stats.updates)
          << "layout=" << ToString(layout);
      EXPECT_EQ(s.in_place, rowmajor_stats.in_place)
          << "layout=" << ToString(layout);
      EXPECT_EQ(s.migrations, rowmajor_stats.migrations)
          << "layout=" << ToString(layout);
      EXPECT_EQ(s.relayouts, rowmajor_stats.relayouts)
          << "layout=" << ToString(layout);
    }
    // End state must also agree with brute force, not merely with itself.
    Rng qrng(100);
    for (int q = 0; q < 20; ++q) {
      const AABB query = AABB::FromCenterHalfExtent(qrng.PointIn(kUniverse),
                                                    qrng.Uniform(1.0f, 10.0f));
      std::vector<ElementId> got;
      serial.RangeQuery(query, &got);
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, ScanRange(mirror, query))
          << "layout=" << ToString(layout) << " q" << q;
    }
  }
}

// --- Shard determinism ----------------------------------------------------
// The rank-sharded entry blocks are a pure storage knob: every observable
// result (full-scan emission order, range/knn outputs, self-join pairs AND
// counters, ApplyUpdates stats) must be identical across shard counts,
// thread counts and layouts. The single-block serial grid is the reference.

TEST(ShardDeterminismTest, BuildAndQueriesIdenticalAcrossShardCounts) {
  for (const NamedDataset& ds : BatteryDatasets()) {
    for (const CellLayout layout : kLayouts) {
      const MemGrid reference = MakeGrid(ds.elements, 0, 4.0f, layout);
      const std::vector<ElementId> want = LayoutOrder(reference);
      for (const std::uint32_t shards : kShardCounts) {
        for (const std::uint32_t t : {0u, 2u, 8u}) {
          const MemGrid g = MakeGrid(ds.elements, t, 4.0f, layout, shards);
          std::string err;
          ASSERT_TRUE(g.CheckInvariants(&err))
              << ds.name << " layout=" << ToString(layout)
              << " shards=" << shards << " t=" << t << ": " << err;
          EXPECT_EQ(g.Shape().shards, shards);
          // A fresh gap-free multi-shard build streams as one run per
          // occupied shard (blocks are separate allocations).
          EXPECT_LE(g.Shape().layout_runs, shards);
          // Emission order of a full scan is the rank order — independent
          // of where shard boundaries fall.
          ASSERT_EQ(LayoutOrder(g), want)
              << ds.name << " layout=" << ToString(layout)
              << " shards=" << shards << " t=" << t;
          Rng rng(58);
          for (int q = 0; q < 12; ++q) {
            const AABB query = AABB::FromCenterHalfExtent(
                rng.PointIn(kUniverse), rng.Uniform(0.5f, 12.0f));
            std::vector<ElementId> got, ref;
            g.RangeQuery(query, &got);
            reference.RangeQuery(query, &ref);
            ASSERT_EQ(got, ref)
                << ds.name << " layout=" << ToString(layout)
                << " shards=" << shards << " t=" << t << " q" << q;
          }
          for (int q = 0; q < 6; ++q) {
            const Vec3 p = rng.PointIn(kUniverse);
            std::vector<ElementId> got, ref;
            g.KnnQuery(p, 9, &got);
            reference.KnnQuery(p, 9, &ref);
            ASSERT_EQ(got, ref)
                << ds.name << " layout=" << ToString(layout)
                << " shards=" << shards << " t=" << t << " q" << q;
          }
        }
      }
    }
  }
}

TEST(ShardDeterminismTest, SelfJoinIdenticalAcrossShardCounts) {
  for (const NamedDataset& ds : BatteryDatasets()) {
    for (const float eps : {0.0f, 0.5f}) {
      for (const CellLayout layout : kLayouts) {
        std::vector<std::pair<ElementId, ElementId>> want;
        QueryCounters want_c;
        MakeGrid(ds.elements, 0, 4.0f, layout).SelfJoin(eps, &want, &want_c);
        for (const std::uint32_t shards : kShardCounts) {
          for (const std::uint32_t t : {0u, 8u}) {
            const MemGrid g = MakeGrid(ds.elements, t, 4.0f, layout, shards);
            std::vector<std::pair<ElementId, ElementId>> got;
            QueryCounters got_c;
            g.SelfJoin(eps, &got, &got_c);
            // Element-for-element: sweeping origin cells in rank order
            // makes the emission independent of the shard partition.
            ASSERT_EQ(got, want)
                << ds.name << " layout=" << ToString(layout)
                << " shards=" << shards << " t=" << t << " eps=" << eps;
            EXPECT_EQ(got_c.element_tests, want_c.element_tests);
            EXPECT_EQ(got_c.nodes_visited, want_c.nodes_visited);
            EXPECT_EQ(got_c.results, want_c.results);
          }
        }
      }
    }
  }
}

TEST(ShardDeterminismTest, ApplyUpdatesIdenticalAcrossShardsAndCompaction) {
  const auto elems = GenerateUniformBoxes(4096, kUniverse, 0.1f, 0.8f);
  struct Config {
    std::uint32_t shards;
    std::uint32_t compact;
    std::uint32_t threads;
  };
  // Shards x incremental-compaction x threads, against the single-block
  // serial reference. A tiny budget (4) keeps passes IN FLIGHT across
  // rounds, so the two-block reads (fresh below the cursor, block above)
  // are exercised by every query and invariant check below.
  const Config kConfigs[] = {{1, 0, 8},  {2, 0, 0}, {8, 0, 8},
                             {2, 4, 0},  {8, 4, 8}, {8, 256, 0},
                             {1, 16, 0}};
  for (const CellLayout layout : kLayouts) {
    MemGrid reference = MakeGrid(elems, 0, 4.0f, layout);
    std::vector<MemGrid> grids;
    for (const Config& c : kConfigs) {
      grids.push_back(
          MakeGrid(elems, c.threads, 4.0f, layout, c.shards, c.compact));
    }
    std::vector<Element> mirror = elems;
    Rng rng(99);
    bool saw_compacting = false;
    for (int round = 0; round < 4; ++round) {
      const auto batch = SeededUpdateBatch(&mirror, &rng);
      const std::size_t want_applied = reference.ApplyUpdates(batch);
      const std::vector<ElementId> want_layout = LayoutOrder(reference);
      const MemGridUpdateStats& ws = reference.update_stats();
      for (std::size_t gi = 0; gi < grids.size(); ++gi) {
        MemGrid& g = grids[gi];
        const auto label = [&] {
          return std::string("layout=") + ToString(layout) + " shards=" +
                 std::to_string(kConfigs[gi].shards) + " compact=" +
                 std::to_string(kConfigs[gi].compact) + " t=" +
                 std::to_string(kConfigs[gi].threads) + " round " +
                 std::to_string(round);
        };
        EXPECT_EQ(g.ApplyUpdates(batch), want_applied) << label();
        std::string err;
        ASSERT_TRUE(g.CheckInvariants(&err)) << label() << ": " << err;
        // The full-scan emission order is invariant under sharding AND
        // under a mid-flight compaction pass (copies preserve region
        // content order; emission follows rank order).
        ASSERT_EQ(LayoutOrder(g), want_layout) << label();
        const MemGridUpdateStats& s = g.update_stats();
        // Classification is storage-independent; only relayout/compaction
        // counters may differ across shard counts and budgets.
        EXPECT_EQ(s.updates, ws.updates) << label();
        EXPECT_EQ(s.in_place, ws.in_place) << label();
        EXPECT_EQ(s.migrations, ws.migrations) << label();
        saw_compacting |= g.Shape().compacting_shards > 0;
      }
    }
    // The tiny-budget configs must actually have been caught mid-pass at
    // least once, or the two-block read path went untested.
    EXPECT_TRUE(saw_compacting) << ToString(layout);
    // End state agrees with brute force, not merely with itself.
    Rng qrng(100);
    for (int q = 0; q < 12; ++q) {
      const AABB query = AABB::FromCenterHalfExtent(
          qrng.PointIn(kUniverse), qrng.Uniform(1.0f, 10.0f));
      std::vector<ElementId> got;
      grids.back().RangeQuery(query, &got);
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, ScanRange(mirror, query))
          << "layout=" << ToString(layout) << " q" << q;
    }
  }
}

TEST(ShardDeterminismTest, IncrementalCompactionReclaimsChurnWithoutRelayout) {
  // Teleport-heavy churn on a sharded grid with a healthy budget: passes
  // must complete (compaction_passes > 0), no stop-the-shard re-layout may
  // ever fire, waste must stay bounded, and queries must stay exact
  // throughout — including while shards are mid-pass.
  const std::size_t n = 20000;
  auto mirror = GenerateUniformBoxes(n, kUniverse, 0.05f, 0.4f);
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 2.0f,
                                     .threads = 0,
                                     .shards = 4,
                                     .compact_regions_per_batch = 512});
  g.Build(mirror);
  Rng rng(71);
  std::vector<ElementUpdate> batch;
  for (int round = 0; round < 60; ++round) {
    batch.clear();
    for (Element& e : mirror) {
      if (rng.NextFloat() < 0.05f) {
        e.box = AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                           rng.Uniform(0.05f, 0.4f));
      } else {
        e.box = e.box.Translated(Vec3(rng.Normal(0, 0.02f),
                                      rng.Normal(0, 0.02f),
                                      rng.Normal(0, 0.02f)));
      }
      batch.emplace_back(e.id, e.box);
    }
    ASSERT_EQ(g.ApplyUpdates(batch), batch.size()) << "round " << round;
    if (round % 10 == 9) {
      std::string err;
      ASSERT_TRUE(g.CheckInvariants(&err)) << "round " << round << ": "
                                           << err;
      const AABB query = AABB::FromCenterHalfExtent(
          rng.PointIn(kUniverse), rng.Uniform(2.0f, 10.0f));
      std::vector<ElementId> got;
      g.RangeQuery(query, &got);
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, ScanRange(mirror, query)) << "round " << round;
    }
  }
  EXPECT_GT(g.update_stats().compaction_passes, 0u);
  EXPECT_EQ(g.update_stats().relayouts, 0u);
  const MemGridShape shape = g.Shape();
  // Incremental reclamation keeps dead+slack waste proportional to the
  // population instead of letting churn grow the blocks unboundedly.
  EXPECT_LT(shape.dead_slots + shape.slack_slots, 5 * n);
}

// --- Batch query engine determinism ---------------------------------------
// RangeQueryBatch / KnnQueryBatch are a pure THROUGHPUT knob: slot i must
// be bit-identical (ids AND emission order) to the per-probe call on the
// same grid, and the batch counters must sum to the per-probe totals —
// whatever the layout, shard count, worker-thread count, decomposition or
// mid-compaction state, and whatever the rank-ordered schedule (duplicate
// reuse included) did internally.

/// Probe set exercising the scheduler's interesting cases: a spread of
/// ordinary probes across the rank space, exact duplicates (the reuse
/// path), rank ties that are NOT duplicates, and degenerate boxes.
std::vector<AABB> BatchRangeProbes() {
  Rng rng(63);
  std::vector<AABB> probes;
  for (int i = 0; i < 48; ++i) {
    probes.push_back(AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                rng.Uniform(0.5f, 12.0f)));
  }
  // Exact duplicates of earlier probes, scattered so the schedule (not the
  // arrival order) has to bring them together.
  probes.push_back(probes[5]);
  probes.push_back(probes[20]);
  probes.push_back(probes[5]);
  // Same center cell, different extent: shares the schedule rank with its
  // sibling but must NOT take the duplicate-reuse path.
  probes.push_back(probes[7].Inflated(1.5f));
  // Degenerates: zero-volume plane, a point, an inverted (empty) box and
  // an out-of-universe probe.
  probes.push_back(AABB(Vec3(10, 0, 10), Vec3(10, 100, 90)));
  probes.push_back(AABB::FromPoint(Vec3(50, 50, 50)));
  probes.push_back(AABB(Vec3(60, 60, 60), Vec3(40, 40, 40)));
  probes.push_back(AABB::FromCenterHalfExtent(Vec3(500, 500, 500), 5.0f));
  return probes;
}

std::vector<Vec3> BatchKnnPoints() {
  Rng rng(64);
  std::vector<Vec3> points;
  for (int i = 0; i < 40; ++i) points.push_back(rng.PointIn(kUniverse));
  points.push_back(points[3]);  // duplicate (reuse path)
  points.push_back(points[11]);
  points.push_back(Vec3(-20, 50, 130));  // out of universe
  return points;
}

/// Per-grid bit-identity: batch vs the per-probe loop on the same grid.
void ExpectBatchMatchesPerProbe(const MemGrid& g, const std::string& label) {
  const auto probes = BatchRangeProbes();
  std::vector<std::vector<ElementId>> want_slots(probes.size());
  QueryCounters want_c;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    g.RangeQuery(probes[i], &want_slots[i], &want_c);
  }
  std::vector<std::vector<ElementId>> got_slots;
  QueryCounters got_c;
  g.RangeQueryBatch(probes, &got_slots, &got_c);
  ASSERT_EQ(got_slots.size(), probes.size()) << label;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(got_slots[i], want_slots[i]) << label << " range slot " << i;
  }
  EXPECT_EQ(got_c, want_c) << label << " range counters";

  // The counting kernel rides the same schedule: per-probe counts AND the
  // returned sum must match the per-probe RangeQueryCount loop (which in
  // turn equals the materializing slots, asserted by its own battery).
  std::vector<std::size_t> want_counts(probes.size());
  std::size_t want_total = 0;
  QueryCounters want_cc;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    want_counts[i] = g.RangeQueryCount(probes[i], &want_cc);
    want_total += want_counts[i];
  }
  std::vector<std::size_t> got_counts;
  QueryCounters got_cc;
  const std::size_t got_total =
      g.RangeQueryCountBatch(probes, &got_counts, &got_cc);
  ASSERT_EQ(got_counts, want_counts) << label << " count slots";
  EXPECT_EQ(got_total, want_total) << label << " count total";
  EXPECT_EQ(got_cc, want_cc) << label << " count counters";

  const auto points = BatchKnnPoints();
  std::vector<std::vector<ElementId>> want_knn(points.size());
  QueryCounters want_kc;
  for (std::size_t i = 0; i < points.size(); ++i) {
    g.KnnQuery(points[i], 9, &want_knn[i], &want_kc);
  }
  std::vector<std::vector<ElementId>> got_knn;
  QueryCounters got_kc;
  g.KnnQueryBatch(points, 9, &got_knn, &got_kc);
  ASSERT_EQ(got_knn.size(), points.size()) << label;
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_EQ(got_knn[i], want_knn[i]) << label << " knn slot " << i;
  }
  EXPECT_EQ(got_kc, want_kc) << label << " knn counters";
}

TEST(BatchDeterminismTest, BatchIdenticalToPerProbeAcrossConfigs) {
  struct Config {
    std::uint32_t shards;
    std::uint32_t threads;
    RangeDecomp decomp;
  };
  const Config kConfigs[] = {
      {1, 0, RangeDecomp::kRuns}, {1, 2, RangeDecomp::kRuns},
      {1, 8, RangeDecomp::kSort}, {5, 0, RangeDecomp::kSort},
      {5, 2, RangeDecomp::kRuns}, {5, 8, RangeDecomp::kRuns},
  };
  for (const NamedDataset& ds : BatteryDatasets()) {
    for (const CellLayout layout : kLayouts) {
      // Cross-grid reference: the serial single-block grid's batch output.
      // Batch results must equal the per-probe path on EVERY grid, and the
      // per-probe path is already pinned across configs by the batteries
      // above, so the batch output is transitively config-invariant — but
      // assert it directly too, against slots from the reference grid.
      const MemGrid reference = MakeGrid(ds.elements, 0, 4.0f, layout);
      std::vector<std::vector<ElementId>> ref_slots;
      reference.RangeQueryBatch(BatchRangeProbes(), &ref_slots);
      for (const Config& c : kConfigs) {
        const std::string label =
            std::string(ds.name) + " layout=" + ToString(layout) +
            " shards=" + std::to_string(c.shards) +
            " t=" + std::to_string(c.threads) +
            " decomp=" + ToString(c.decomp);
        const MemGrid g = MakeGrid(ds.elements, c.threads, 4.0f, layout,
                                   c.shards, 0, c.decomp);
        ExpectBatchMatchesPerProbe(g, label);
        std::vector<std::vector<ElementId>> got_slots;
        g.RangeQueryBatch(BatchRangeProbes(), &got_slots);
        ASSERT_EQ(got_slots, ref_slots) << label << " vs reference grid";
      }
    }
  }
}

TEST(BatchDeterminismTest, BatchIdenticalAcrossProbeGrains) {
  // batch_probe_grain only reshapes the worker partitions of the rank
  // schedule; every value must reproduce the default-grain (and per-probe)
  // output bit for bit.
  const auto elems = GenerateUniformBoxes(4096, kUniverse, 0.1f, 0.8f);
  for (const CellLayout layout : kLayouts) {
    const MemGrid reference = MakeGrid(elems, 0, 4.0f, layout);
    std::vector<std::vector<ElementId>> ref_slots;
    reference.RangeQueryBatch(BatchRangeProbes(), &ref_slots);
    for (const std::uint32_t grain : {1u, 3u, 8u}) {
      for (const std::uint32_t threads : {2u, 8u}) {
        MemGrid g(kUniverse,
                  MemGridConfig{.cell_size = 4.0f,
                                .threads = threads,
                                .layout = layout,
                                .shards = 5,
                                .batch_probe_grain = grain});
        g.Build(elems);
        const std::string label = std::string("layout=") + ToString(layout) +
                                  " grain=" + std::to_string(grain) +
                                  " t=" + std::to_string(threads);
        ExpectBatchMatchesPerProbe(g, label);
        std::vector<std::vector<ElementId>> got;
        g.RangeQueryBatch(BatchRangeProbes(), &got);
        ASSERT_EQ(got, ref_slots) << label << " vs reference grid";
      }
    }
  }
}

TEST(BatchDeterminismTest, BatchIdenticalMidCompaction) {
  const auto elems = GenerateUniformBoxes(4096, kUniverse, 0.1f, 0.8f);
  // Tiny compaction budget + churn keeps passes in flight, so the batch
  // schedule reads shards through the two-block (fresh-below-cursor)
  // state; threads 8 exercises the batch fan-out on top.
  struct Config {
    std::uint32_t shards;
    std::uint32_t compact;
    std::uint32_t threads;
  };
  const Config kConfigs[] = {{5, 4, 0}, {5, 4, 8}, {8, 4, 2}};
  for (const CellLayout layout : kLayouts) {
    MemGrid reference = MakeGrid(elems, 0, 4.0f, layout);
    std::vector<MemGrid> grids;
    for (const Config& c : kConfigs) {
      grids.push_back(
          MakeGrid(elems, c.threads, 4.0f, layout, c.shards, c.compact));
    }
    std::vector<Element> mirror = elems;
    Rng rng(99);
    bool saw_compacting = false;
    for (int round = 0; round < 3; ++round) {
      const auto batch = SeededUpdateBatch(&mirror, &rng);
      reference.ApplyUpdates(batch);
      for (std::size_t gi = 0; gi < grids.size(); ++gi) {
        MemGrid& g = grids[gi];
        g.ApplyUpdates(batch);
        saw_compacting |= g.Shape().compacting_shards > 0;
        const std::string label =
            std::string("layout=") + ToString(layout) + " shards=" +
            std::to_string(kConfigs[gi].shards) + " compact=" +
            std::to_string(kConfigs[gi].compact) + " t=" +
            std::to_string(kConfigs[gi].threads) + " round " +
            std::to_string(round);
        ExpectBatchMatchesPerProbe(g, label);
        // And against the un-sharded, un-compacting reference grid.
        std::vector<std::vector<ElementId>> got, want;
        g.RangeQueryBatch(BatchRangeProbes(), &got);
        reference.RangeQueryBatch(BatchRangeProbes(), &want);
        ASSERT_EQ(got, want) << label << " vs reference grid";
      }
    }
    // The tiny-budget configs must actually have been caught mid-pass, or
    // the batch-over-two-block-reads path went untested.
    EXPECT_TRUE(saw_compacting) << ToString(layout);
  }
}

}  // namespace
}  // namespace simspatial::core
