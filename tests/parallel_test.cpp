// Parallel determinism battery: the MemGrid parallel kernels (counting-
// scatter Build, x-slab SelfJoin, ApplyUpdates classification) must produce
// results ELEMENT-FOR-ELEMENT identical to the serial paths at every thread
// count, on every dataset shape — the property that makes "--threads=N" a
// pure performance knob. Also unit-tests the static-partition thread pool
// itself (common/parallel.h).
//
// This suite is the intended TSan workload:
//   cmake -B build-tsan -S . -DSIMSPATIAL_SANITIZE=thread
//   cmake --build build-tsan -j && ./build-tsan/parallel_test

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "common/bruteforce.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/memgrid.h"
#include "datagen/neuron.h"

namespace simspatial::core {
namespace {

using datagen::GenerateClusteredBoxes;
using datagen::GenerateUniformBoxes;

const AABB kUniverse(Vec3(0, 0, 0), Vec3(100, 100, 100));

// Thread counts the battery sweeps; 0 is the serial reference. 8 on a
// smaller machine oversubscribes the cores, which is exactly the kind of
// scheduling chaos determinism must survive.
const std::uint32_t kThreadCounts[] = {1, 2, 8};

struct NamedDataset {
  const char* name;
  std::vector<Element> elements;
};

std::vector<NamedDataset> BatteryDatasets() {
  std::vector<NamedDataset> ds;
  ds.push_back({"uniform", GenerateUniformBoxes(4096, kUniverse, 0.1f, 0.8f)});
  ds.push_back({"clustered",
                GenerateClusteredBoxes(4096, kUniverse, 8, 4.0f, 0.1f, 0.6f)});
  // Degenerate: every centre in one cell (cell_size below pins cell (0,0,0)
  // region with the whole population).
  {
    Rng rng(41);
    std::vector<Element> one_cell;
    for (ElementId i = 0; i < 3000; ++i) {
      const Vec3 c(rng.Uniform(0.5f, 3.5f), rng.Uniform(0.5f, 3.5f),
                   rng.Uniform(0.5f, 3.5f));
      one_cell.emplace_back(i, AABB::FromCenterHalfExtent(c, 0.2f));
    }
    ds.push_back({"one-cell", std::move(one_cell)});
  }
  ds.push_back({"empty", {}});
  return ds;
}

MemGrid MakeGrid(const std::vector<Element>& elements, std::uint32_t threads,
                 float cell_size = 4.0f) {
  MemGrid g(kUniverse, MemGridConfig{.cell_size = cell_size,
                                     .threads = threads});
  g.Build(elements);
  return g;
}

/// Ids in storage order: a full-universe range query streams the slack-CSR
/// block in cell-region order, so equal outputs mean equal *layouts*, not
/// just equal sets.
std::vector<ElementId> LayoutOrder(const MemGrid& g) {
  std::vector<ElementId> out;
  g.RangeQuery(kUniverse.Inflated(10.0f), &out);
  return out;
}

// --- Thread pool ----------------------------------------------------------

TEST(ThreadPoolTest, RunExecutesEverySlotExactlyOnce) {
  for (const std::size_t slots : {1u, 2u, 5u, 16u}) {
    std::vector<std::atomic<int>> hits(slots);
    for (auto& h : hits) h = 0;
    par::ThreadPool::Global().Run(slots,
                                  [&](std::size_t s) { hits[s].fetch_add(1); });
    for (std::size_t s = 0; s < slots; ++s) {
      EXPECT_EQ(hits[s].load(), 1) << "slot " << s << " of " << slots;
    }
  }
}

TEST(ThreadPoolTest, ParallelChunksCoversRangeExactlyOnce) {
  for (const std::size_t chunks : {1u, 2u, 3u, 8u, 13u}) {
    for (const std::size_t n : {0u, 1u, 7u, 100u, 1047u}) {
      std::vector<std::atomic<int>> seen(n);
      for (auto& s : seen) s = 0;
      par::ParallelChunks(chunks, n,
                          [&](std::size_t, std::size_t b, std::size_t e) {
                            for (std::size_t i = b; i < e; ++i) {
                              seen[i].fetch_add(1);
                            }
                          });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(seen[i].load(), 1)
            << "i=" << i << " chunks=" << chunks << " n=" << n;
      }
    }
  }
}

TEST(ThreadPoolTest, SlotExceptionPropagatesAfterAllSlotsFinish) {
  std::vector<std::atomic<int>> hits(8);
  for (auto& h : hits) h = 0;
  EXPECT_THROW(par::ThreadPool::Global().Run(8,
                                             [&](std::size_t s) {
                                               hits[s].fetch_add(1);
                                               if (s == 3) {
                                                 throw std::runtime_error(
                                                     "slot failure");
                                               }
                                             }),
               std::runtime_error);
  // Run must not unwind until every slot has finished touching `hits`.
  for (std::size_t s = 0; s < hits.size(); ++s) {
    EXPECT_EQ(hits[s].load(), 1) << "slot " << s;
  }
  // The pool stays usable after a failed dispatch.
  std::atomic<int> after{0};
  par::ThreadPool::Global().Run(4, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 4);
}

TEST(ThreadPoolTest, ChunkCountRespectsGrainAndBounds) {
  EXPECT_EQ(par::ChunkCount(0, 10000, 100), 1u);
  EXPECT_EQ(par::ChunkCount(1, 10000, 100), 1u);
  EXPECT_EQ(par::ChunkCount(8, 0, 100), 1u);
  EXPECT_EQ(par::ChunkCount(8, 10000, 1024), 8u);
  EXPECT_EQ(par::ChunkCount(8, 3000, 1024), 2u);   // grain-limited
  EXPECT_EQ(par::ChunkCount(8, 1000, 1024), 1u);   // below one grain
  EXPECT_EQ(par::ChunkCount(4, 100, 1), 4u);
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(par::ResolveThreads(0), 0u);
  EXPECT_EQ(par::ResolveThreads(3), 3u);
  EXPECT_GE(par::ResolveThreads(par::kThreadsAuto), 1u);
}

// --- Build determinism ----------------------------------------------------

TEST(ParallelDeterminismTest, BuildLayoutIdenticalAcrossThreadCounts) {
  for (const NamedDataset& ds : BatteryDatasets()) {
    const MemGrid serial = MakeGrid(ds.elements, 0);
    const std::vector<ElementId> want = LayoutOrder(serial);
    const MemGridShape want_shape = serial.Shape();
    for (const std::uint32_t t : kThreadCounts) {
      const MemGrid g = MakeGrid(ds.elements, t);
      std::string err;
      ASSERT_TRUE(g.CheckInvariants(&err)) << ds.name << " t=" << t << ": "
                                           << err;
      EXPECT_EQ(LayoutOrder(g), want) << ds.name << " t=" << t;
      const MemGridShape shape = g.Shape();
      EXPECT_EQ(shape.occupied_cells, want_shape.occupied_cells)
          << ds.name << " t=" << t;
      EXPECT_EQ(shape.slack_slots, want_shape.slack_slots)
          << ds.name << " t=" << t;
      EXPECT_EQ(shape.max_half_extent, want_shape.max_half_extent)
          << ds.name << " t=" << t;
    }
  }
}

TEST(ParallelDeterminismTest, RangeAndKnnIdenticalAfterParallelBuild) {
  for (const NamedDataset& ds : BatteryDatasets()) {
    const MemGrid serial = MakeGrid(ds.elements, 0);
    for (const std::uint32_t t : kThreadCounts) {
      const MemGrid g = MakeGrid(ds.elements, t);
      Rng rng(57);
      for (int q = 0; q < 20; ++q) {
        const AABB query = AABB::FromCenterHalfExtent(
            rng.PointIn(kUniverse), rng.Uniform(0.5f, 12.0f));
        std::vector<ElementId> got, want;
        g.RangeQuery(query, &got);
        serial.RangeQuery(query, &want);
        ASSERT_EQ(got, want) << ds.name << " t=" << t << " q" << q;
      }
      for (int q = 0; q < 10; ++q) {
        const Vec3 p = rng.PointIn(kUniverse);
        std::vector<ElementId> got, want;
        g.KnnQuery(p, 9, &got);
        serial.KnnQuery(p, 9, &want);
        ASSERT_EQ(got, want) << ds.name << " t=" << t << " q" << q;
      }
    }
  }
}

// --- SelfJoin determinism -------------------------------------------------

TEST(ParallelDeterminismTest, SelfJoinPairsAndCountersIdentical) {
  for (const NamedDataset& ds : BatteryDatasets()) {
    const MemGrid serial = MakeGrid(ds.elements, 0);
    for (const float eps : {0.0f, 0.5f}) {
      std::vector<std::pair<ElementId, ElementId>> want;
      QueryCounters want_c;
      serial.SelfJoin(eps, &want, &want_c);
      for (const std::uint32_t t : kThreadCounts) {
        const MemGrid g = MakeGrid(ds.elements, t);
        std::vector<std::pair<ElementId, ElementId>> got;
        QueryCounters got_c;
        g.SelfJoin(eps, &got, &got_c);
        // Element-for-element: parallel slabs must reproduce the serial
        // emission ORDER, not just the pair set.
        ASSERT_EQ(got, want) << ds.name << " t=" << t << " eps=" << eps;
        EXPECT_EQ(got_c.element_tests, want_c.element_tests)
            << ds.name << " t=" << t;
        EXPECT_EQ(got_c.nodes_visited, want_c.nodes_visited)
            << ds.name << " t=" << t;
        EXPECT_EQ(got_c.results, want_c.results) << ds.name << " t=" << t;
      }
    }
  }
}

TEST(ParallelDeterminismTest, SelfJoinMatchesBruteForce) {
  const auto elems = GenerateUniformBoxes(2000, kUniverse, 0.2f, 0.8f);
  for (const std::uint32_t t : kThreadCounts) {
    const MemGrid g = MakeGrid(elems, t, /*cell_size=*/2.5f);
    for (const float eps : {0.0f, 0.5f}) {
      std::vector<std::pair<ElementId, ElementId>> got;
      g.SelfJoin(eps, &got);
      SortPairs(&got);
      auto want = NestedLoopSelfJoin(elems, eps);
      SortPairs(&want);
      EXPECT_EQ(got, want) << "t=" << t << " eps=" << eps;
    }
  }
}

// Regression for the widened-reach path (cell_size < 2*max_half_extent +
// eps): matching centres can sit several cells — and therefore several
// SLABS — apart, so the slab partitioning must still assign each cross-slab
// pair to exactly one origin cell. 3000 elements keeps the widened sweep
// cheaper than the all-pairs fallback, so the slab path itself runs.
TEST(ParallelDeterminismTest, WidenedReachEmitsCrossSlabPairsExactlyOnce) {
  Rng rng(85);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 3000; ++i) {
    elems.emplace_back(i, AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                     rng.Uniform(0.5f, 3.0f)));
  }
  const MemGrid serial = MakeGrid(elems, 0, /*cell_size=*/2.0f);
  for (const float eps : {0.0f, 1.0f}) {
    std::vector<std::pair<ElementId, ElementId>> want;
    serial.SelfJoin(eps, &want);
    for (const std::uint32_t t : kThreadCounts) {
      const MemGrid g = MakeGrid(elems, t, /*cell_size=*/2.0f);
      std::vector<std::pair<ElementId, ElementId>> got;
      g.SelfJoin(eps, &got);
      ASSERT_EQ(got, want) << "t=" << t << " eps=" << eps;
      // Exactly once: no duplicates even among pairs whose cells straddle
      // a slab boundary.
      auto sorted = got;
      SortPairs(&sorted);
      ASSERT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                sorted.end())
          << "duplicate pair at t=" << t << " eps=" << eps;
      auto brute = NestedLoopSelfJoin(elems, eps);
      SortPairs(&brute);
      ASSERT_EQ(sorted, brute) << "t=" << t << " eps=" << eps;
    }
  }
}

// --- ApplyUpdates determinism --------------------------------------------

std::vector<ElementUpdate> SeededUpdateBatch(std::vector<Element>* mirror,
                                             Rng* rng) {
  std::vector<ElementUpdate> batch;
  for (Element& e : *mirror) {
    const float dice = rng->NextFloat();
    if (dice < 0.6f) {
      // In-place nudge.
      e.box = e.box.Translated(Vec3(rng->Normal(0, 0.05f),
                                    rng->Normal(0, 0.05f),
                                    rng->Normal(0, 0.05f)));
    } else {
      // Teleport: forces a migration (and region slack churn).
      e.box = AABB::FromCenterHalfExtent(rng->PointIn(kUniverse),
                                         rng->Uniform(0.1f, 0.9f));
    }
    batch.emplace_back(e.id, e.box);
  }
  // Same id twice in one batch (staged-overwrite path) + an unknown id.
  if (!mirror->empty()) {
    Element& dup = (*mirror)[mirror->size() / 2];
    dup.box = AABB::FromCenterHalfExtent(rng->PointIn(kUniverse), 0.4f);
    batch.emplace_back(dup.id, dup.box);
  }
  batch.emplace_back(kInvalidElement, AABB::FromCenterHalfExtent(
                                          Vec3(1, 1, 1), 0.1f));
  return batch;
}

TEST(ParallelDeterminismTest, ApplyUpdatesIdenticalAcrossThreadCounts) {
  const auto elems = GenerateUniformBoxes(4096, kUniverse, 0.1f, 0.8f);
  // Drive the serial reference and each thread count through the SAME
  // seeded three-round batch stream; every structural observable must
  // match after every round.
  MemGrid serial = MakeGrid(elems, 0);
  std::vector<MemGrid> grids;
  for (const std::uint32_t t : kThreadCounts) {
    grids.push_back(MakeGrid(elems, t));
  }
  std::vector<Element> mirror = elems;
  Rng rng(99);
  for (int round = 0; round < 3; ++round) {
    // One batch per round; every grid sees the identical batch.
    const auto batch = SeededUpdateBatch(&mirror, &rng);
    const std::size_t want_applied = serial.ApplyUpdates(batch);
    const std::vector<ElementId> want_layout = LayoutOrder(serial);
    const MemGridUpdateStats& ws = serial.update_stats();
    for (std::size_t gi = 0; gi < grids.size(); ++gi) {
      MemGrid& g = grids[gi];
      EXPECT_EQ(g.ApplyUpdates(batch), want_applied)
          << "t=" << kThreadCounts[gi] << " round " << round;
      std::string err;
      ASSERT_TRUE(g.CheckInvariants(&err))
          << "t=" << kThreadCounts[gi] << " round " << round << ": " << err;
      ASSERT_EQ(LayoutOrder(g), want_layout)
          << "t=" << kThreadCounts[gi] << " round " << round;
      const MemGridUpdateStats& s = g.update_stats();
      EXPECT_EQ(s.updates, ws.updates) << "t=" << kThreadCounts[gi];
      EXPECT_EQ(s.in_place, ws.in_place) << "t=" << kThreadCounts[gi];
      EXPECT_EQ(s.migrations, ws.migrations) << "t=" << kThreadCounts[gi];
      EXPECT_EQ(s.relayouts, ws.relayouts) << "t=" << kThreadCounts[gi];
    }
  }
  // End state must also agree with brute force, not merely with itself.
  Rng qrng(100);
  for (int q = 0; q < 20; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(qrng.PointIn(kUniverse),
                                                  qrng.Uniform(1.0f, 10.0f));
    std::vector<ElementId> got;
    serial.RangeQuery(query, &got);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, ScanRange(mirror, query)) << "q" << q;
  }
}

}  // namespace
}  // namespace simspatial::core
