// Compile-and-smoke test of the umbrella public header: the documented
// downstream usage must work with only #include "core/simspatial.h".

#include "core/simspatial.h"

#include <gtest/gtest.h>

namespace {

using namespace simspatial;  // NOLINT: exercising the documented usage.

TEST(PublicApiTest, ReadmeQuickstartCompilesAndRuns) {
  auto ds = datagen::GenerateNeuronsWithSize(2000);
  auto index = core::MakeIndex("memgrid");
  ASSERT_NE(index, nullptr);
  index->Build(ds.elements, ds.universe);

  const AABB probe = AABB::FromCenterHalfExtent(ds.universe.Center(), 5.0f);
  std::vector<ElementId> hits;
  index->RangeQuery(probe, &hits);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, ScanRange(ds.elements, probe));

  std::vector<ElementUpdate> moves;
  for (const Element& e : ds.elements) {
    moves.emplace_back(e.id, e.box.Translated(Vec3(0.01f, 0, 0)));
  }
  EXPECT_EQ(index->ApplyUpdates(moves), moves.size());
}

TEST(PublicApiTest, EveryAdvertisedTypeIsReachable) {
  // One object of each public family, to catch accidental header breaks.
  rtree::RTree rt;
  crtree::CRTree cr;
  pam::KdTree kd;
  pam::Octree oc;
  const AABB u(Vec3(0, 0, 0), Vec3(1, 1, 1));
  pam::LooseOctree lo(u);
  grid::UniformGrid ug(u, 0.1f);
  grid::MultiGrid mg(u);
  lsh::LshKnn lsh;
  core::MemGrid memgrid(u);
  EXPECT_EQ(rt.size() + cr.size() + kd.size() + oc.size() + lo.size() +
                ug.size() + mg.size() + lsh.size() + memgrid.size(),
            0u);
  // Cost model + counters are part of the public contract.
  const CostModel m = CostModel::Defaults();
  EXPECT_GT(m.ns_per_element_test, 0.0);
  QueryCounters c;
  c.element_tests = 1;
  EXPECT_EQ(c.TotalIntersectionTests(), 1u);
}

}  // namespace
