// Parallel-join determinism battery: every join algorithm must produce a
// BIT-IDENTICAL result — same pairs, same emission order, same counter
// totals, same shortcut tallies — for every thread count, because the
// drivers walk a deterministically-ordered work sequence in contiguous
// chunks and merge per-worker shards in chunk order (join/join_parallel.h).
// threads=0 is the serial reference; 1, 2, 8 and kThreadsAuto must match
// it exactly (no SortPairs anywhere in this file — order is part of the
// contract).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/threads.h"
#include "datagen/neuron.h"
#include "join/spatial_join.h"

namespace simspatial::join {
namespace {

using datagen::GenerateClusteredBoxes;
using datagen::GenerateUniformBoxes;

const AABB kUniverse(Vec3(0, 0, 0), Vec3(60, 60, 60));

const std::uint32_t kThreadCounts[] = {1, 2, 8, par::kThreadsAuto};

struct RunResult {
  std::vector<JoinPair> pairs;
  QueryCounters counters;
  std::uint64_t skipped = 0;
};

template <typename RunFn>
void ExpectThreadInvariant(const char* what, const RunFn& run) {
  const RunResult serial = run(0u);
  for (const std::uint32_t t : kThreadCounts) {
    const RunResult got = run(t);
    EXPECT_EQ(got.pairs, serial.pairs)
        << what << " pairs diverge at threads=" << t;
    EXPECT_EQ(got.counters, serial.counters)
        << what << " counters diverge at threads=" << t;
    EXPECT_EQ(got.skipped, serial.skipped)
        << what << " skipped-test tally diverges at threads=" << t;
  }
}

class JoinDeterminismTest : public ::testing::TestWithParam<float> {};

TEST_P(JoinDeterminismTest, GridSelfJoin) {
  const float eps = GetParam();
  const auto elems = GenerateClusteredBoxes(2500, kUniverse, 6, 3.0f, 0.2f,
                                            0.6f);
  ExpectThreadInvariant("GridSelfJoin", [&](std::uint32_t threads) {
    RunResult r;
    GridJoinOptions o;
    o.threads = threads;
    GridJoinStats stats;
    r.pairs = GridSelfJoin(elems, eps, o, &r.counters, &stats);
    r.skipped = stats.skipped_tests;
    return r;
  });
}

TEST_P(JoinDeterminismTest, GridJoin) {
  const float eps = GetParam();
  const auto a = GenerateUniformBoxes(1800, kUniverse, 0.2f, 0.8f);
  const auto b = GenerateClusteredBoxes(1500, kUniverse, 5, 3.0f, 0.2f,
                                        0.7f);
  ExpectThreadInvariant("GridJoin", [&](std::uint32_t threads) {
    RunResult r;
    GridJoinOptions o;
    o.threads = threads;
    r.pairs = GridJoin(a, b, eps, o, &r.counters);
    return r;
  });
}

TEST_P(JoinDeterminismTest, PbsmSelfJoin) {
  const float eps = GetParam();
  const auto elems = GenerateUniformBoxes(2500, kUniverse, 0.2f, 0.8f);
  ExpectThreadInvariant("PbsmSelfJoin", [&](std::uint32_t threads) {
    RunResult r;
    PbsmOptions o;
    o.threads = threads;
    r.pairs = PbsmSelfJoin(elems, eps, o, &r.counters);
    return r;
  });
}

TEST_P(JoinDeterminismTest, PbsmJoin) {
  const float eps = GetParam();
  const auto a = GenerateClusteredBoxes(1500, kUniverse, 4, 4.0f, 0.2f,
                                        0.6f);
  const auto b = GenerateUniformBoxes(1800, kUniverse, 0.2f, 0.8f);
  ExpectThreadInvariant("PbsmJoin", [&](std::uint32_t threads) {
    RunResult r;
    PbsmOptions o;
    o.threads = threads;
    r.pairs = PbsmJoin(a, b, eps, o, &r.counters);
    return r;
  });
}

TEST_P(JoinDeterminismTest, TouchSelfJoin) {
  const float eps = GetParam();
  const auto elems = GenerateClusteredBoxes(2500, kUniverse, 6, 3.0f, 0.2f,
                                            0.6f);
  ExpectThreadInvariant("TouchSelfJoin", [&](std::uint32_t threads) {
    RunResult r;
    TouchOptions o;
    o.threads = threads;
    r.pairs = TouchSelfJoin(elems, eps, o, &r.counters);
    return r;
  });
}

TEST_P(JoinDeterminismTest, TouchJoin) {
  const float eps = GetParam();
  const auto a = GenerateUniformBoxes(1800, kUniverse, 0.2f, 0.8f);
  const auto b = GenerateClusteredBoxes(1500, kUniverse, 5, 3.0f, 0.2f,
                                        0.7f);
  ExpectThreadInvariant("TouchJoin", [&](std::uint32_t threads) {
    RunResult r;
    TouchOptions o;
    o.threads = threads;
    r.pairs = TouchJoin(a, b, eps, o, &r.counters);
    return r;
  });
}

// The small-cell shortcut path (pairs emitted without a test) must be
// thread-invariant too: force it with fat elements on a tiny cell size.
TEST(JoinDeterminismTest, GridSelfJoinShortcutPath) {
  // Fat boxes (extent >= 8) in tight clusters on a 2.0 cell: the geometric
  // precondition min_extent >= 2 * cell * sqrt(3) holds and centres share
  // cells often enough for the shortcut to fire.
  auto elems = GenerateClusteredBoxes(600, kUniverse, 3, 1.0f, 4.0f, 6.0f);
  ExpectThreadInvariant("GridSelfJoin-shortcut", [&](std::uint32_t threads) {
    RunResult r;
    GridJoinOptions o;
    o.threads = threads;
    o.cell_size = 2.0f;  // Far below min extent: shortcut engages.
    GridJoinStats stats;
    r.pairs = GridSelfJoin(elems, 0.0f, o, &r.counters, &stats);
    r.skipped = stats.skipped_tests;
    EXPECT_GT(r.skipped, 0u) << "shortcut did not engage at threads="
                             << threads;
    return r;
  });
}

INSTANTIATE_TEST_SUITE_P(Eps, JoinDeterminismTest,
                         ::testing::Values(0.0f, 0.5f),
                         [](const auto& info) {
                           return info.param == 0.0f ? "overlap" : "distance";
                         });

}  // namespace
}  // namespace simspatial::join
