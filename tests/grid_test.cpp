// Uniform grid, multigrid and resolution-model tests.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/bruteforce.h"
#include "common/rng.h"
#include "datagen/neuron.h"
#include "grid/multigrid.h"
#include "grid/resolution.h"
#include "grid/uniform_grid.h"

namespace simspatial::grid {
namespace {

using datagen::GenerateClusteredBoxes;
using datagen::GenerateUniformBoxes;

const AABB kUniverse(Vec3(0, 0, 0), Vec3(100, 100, 100));

std::vector<ElementId> Sorted(std::vector<ElementId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(UniformGridTest, EmptyGrid) {
  UniformGrid g(kUniverse, 5.0f);
  std::vector<ElementId> out;
  g.RangeQuery(kUniverse, &out);
  EXPECT_TRUE(out.empty());
  g.KnnQuery(Vec3(1, 1, 1), 3, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(g.CheckInvariants(nullptr));
}

TEST(UniformGridTest, RangeMatchesBruteForce) {
  const auto elems = GenerateUniformBoxes(8000, kUniverse, 0.1f, 1.5f);
  UniformGrid g(kUniverse, 4.0f);
  g.Build(elems);
  std::string err;
  ASSERT_TRUE(g.CheckInvariants(&err)) << err;
  Rng rng(5);
  for (int q = 0; q < 40; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        rng.PointIn(kUniverse), rng.Uniform(0.5f, 15.0f));
    std::vector<ElementId> got;
    g.RangeQuery(query, &got);
    EXPECT_EQ(Sorted(got), ScanRange(elems, query)) << "q" << q;
  }
}

TEST(UniformGridTest, KnnMatchesBruteForce) {
  const auto elems = GenerateClusteredBoxes(4000, kUniverse, 8, 6.0f, 0.1f,
                                            0.8f);
  UniformGrid g(kUniverse, 3.0f);
  g.Build(elems);
  Rng rng(6);
  for (int q = 0; q < 25; ++q) {
    const Vec3 p = rng.PointIn(kUniverse);
    for (const std::size_t k : {1u, 7u, 50u}) {
      std::vector<ElementId> got;
      g.KnnQuery(p, k, &got);
      EXPECT_EQ(got, ScanKnn(elems, p, k)) << "q" << q << " k" << k;
    }
  }
}

TEST(UniformGridTest, KnnWithKBeyondDatasetSize) {
  const auto elems = GenerateUniformBoxes(20, kUniverse, 0.1f, 0.5f);
  UniformGrid g(kUniverse, 10.0f);
  g.Build(elems);
  std::vector<ElementId> got;
  g.KnnQuery(Vec3(50, 50, 50), 100, &got);
  EXPECT_EQ(got.size(), elems.size());
}

TEST(UniformGridTest, KnnFromOutsideUniverse) {
  const auto elems = GenerateUniformBoxes(500, kUniverse, 0.1f, 0.5f);
  UniformGrid g(kUniverse, 5.0f);
  g.Build(elems);
  const Vec3 p(-50, -50, -50);  // Far outside.
  std::vector<ElementId> got;
  g.KnnQuery(p, 5, &got);
  EXPECT_EQ(got, ScanKnn(elems, p, 5));
}

TEST(UniformGridTest, UpdateFastPathForSmallMoves) {
  auto elems = GenerateUniformBoxes(5000, kUniverse, 0.1f, 0.4f);
  UniformGrid g(kUniverse, 5.0f);
  g.Build(elems);
  Rng rng(7);
  // Plasticity-scale displacements: cells are 5 units, moves ~0.02.
  for (Element& e : elems) {
    e.box = e.box.Translated(Vec3(rng.Normal(0, 0.02f), rng.Normal(0, 0.02f),
                                  rng.Normal(0, 0.02f)));
    ASSERT_TRUE(g.Update(e.id, e.box));
  }
  const GridUpdateStats& s = g.update_stats();
  EXPECT_EQ(s.updates, elems.size());
  // §4.3: almost all updates avoid structural changes.
  EXPECT_GT(s.InPlaceFraction(), 0.95);
  std::string err;
  EXPECT_TRUE(g.CheckInvariants(&err)) << err;
}

TEST(UniformGridTest, UpdateMigratesAcrossCells) {
  UniformGrid g(kUniverse, 5.0f);
  g.Build({});
  g.Insert(Element(1, AABB(Vec3(1, 1, 1), Vec3(2, 2, 2))));
  ASSERT_TRUE(g.Update(1, AABB(Vec3(90, 90, 90), Vec3(91, 91, 91))));
  std::vector<ElementId> out;
  g.RangeQuery(AABB(Vec3(89, 89, 89), Vec3(92, 92, 92)), &out);
  EXPECT_EQ(out.size(), 1u);
  g.RangeQuery(AABB(Vec3(0, 0, 0), Vec3(5, 5, 5)), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_GT(g.update_stats().cell_migrations, 0u);
  std::string err;
  EXPECT_TRUE(g.CheckInvariants(&err)) << err;
}

TEST(UniformGridTest, EraseRemovesAllReplicas) {
  UniformGrid g(kUniverse, 2.0f);
  g.Build({});
  // Large element spanning many cells.
  g.Insert(Element(9, AABB(Vec3(10, 10, 10), Vec3(30, 30, 30))));
  EXPECT_TRUE(g.Erase(9));
  EXPECT_FALSE(g.Erase(9));
  std::vector<ElementId> out;
  g.RangeQuery(kUniverse, &out);
  EXPECT_TRUE(out.empty());
  std::string err;
  EXPECT_TRUE(g.CheckInvariants(&err)) << err;
}

TEST(UniformGridTest, ReplicationFactorGrowsWithFinerCells) {
  const auto elems = GenerateUniformBoxes(2000, kUniverse, 0.5f, 2.0f);
  UniformGrid coarse(kUniverse, 10.0f);
  coarse.Build(elems);
  UniformGrid fine(kUniverse, 1.0f);
  fine.Build(elems);
  // §3.2: "the index size is increased massively" with fine partitioning.
  EXPECT_GT(fine.Shape().replication_factor,
            coarse.Shape().replication_factor * 1.5);
}

TEST(UniformGridTest, NoTreePointerChasing) {
  // Structural claim of §3.3: grid queries never test inner-node MBRs.
  const auto elems = GenerateUniformBoxes(5000, kUniverse, 0.1f, 0.5f);
  UniformGrid g(kUniverse, 4.0f);
  g.Build(elems);
  QueryCounters c;
  std::vector<ElementId> out;
  g.RangeQuery(AABB::FromCenterHalfExtent(Vec3(50, 50, 50), 8.0f), &out, &c);
  EXPECT_EQ(c.structure_tests, 0u);
  EXPECT_GT(c.element_tests, 0u);
}

// Property sweep: exactness must be independent of the chosen resolution
// (resolution is a performance knob, never a correctness knob).
class GridResolutionPropertyTest : public ::testing::TestWithParam<float> {};

TEST_P(GridResolutionPropertyTest, ExactAtAnyResolution) {
  const float cell = GetParam();
  const auto elems = GenerateClusteredBoxes(2500, kUniverse, 6, 6.0f, 0.1f,
                                            1.2f);
  UniformGrid g(kUniverse, cell);
  g.Build(elems);
  std::string err;
  ASSERT_TRUE(g.CheckInvariants(&err)) << "cell=" << cell << ": " << err;
  Rng rng(40);
  for (int q = 0; q < 15; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        rng.PointIn(kUniverse), rng.Uniform(0.5f, 10.0f));
    std::vector<ElementId> got;
    g.RangeQuery(query, &got);
    ASSERT_EQ(Sorted(got), ScanRange(elems, query)) << "cell=" << cell;
  }
  for (int q = 0; q < 6; ++q) {
    const Vec3 p = rng.PointIn(kUniverse);
    std::vector<ElementId> got;
    g.KnnQuery(p, 6, &got);
    ASSERT_EQ(got, ScanKnn(elems, p, 6)) << "cell=" << cell;
  }
}

TEST_P(GridResolutionPropertyTest, UpdatesExactAtAnyResolution) {
  const float cell = GetParam();
  auto elems = GenerateUniformBoxes(1500, kUniverse, 0.1f, 0.9f);
  UniformGrid g(kUniverse, cell);
  g.Build(elems);
  Rng rng(41);
  for (Element& e : elems) {
    e.box = AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                       rng.Uniform(0.1f, 0.9f));
    ASSERT_TRUE(g.Update(e.id, e.box));
  }
  std::string err;
  ASSERT_TRUE(g.CheckInvariants(&err)) << "cell=" << cell << ": " << err;
  for (int q = 0; q < 10; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        rng.PointIn(kUniverse), rng.Uniform(1.0f, 8.0f));
    std::vector<ElementId> got;
    g.RangeQuery(query, &got);
    ASSERT_EQ(Sorted(got), Sorted(ScanRange(elems, query)))
        << "cell=" << cell;
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, GridResolutionPropertyTest,
                         ::testing::Values(0.7f, 2.0f, 5.0f, 12.0f, 40.0f,
                                           150.0f),
                         [](const ::testing::TestParamInfo<float>& info) {
                           return "cell_" +
                                  std::to_string(
                                      static_cast<int>(info.param * 10));
                         });

// --- MultiGrid -------------------------------------------------------------

TEST(MultiGridTest, LevelAssignmentBySize) {
  MultiGridConfig cfg;
  cfg.finest_cell_size = 1.0f;
  cfg.growth = 2.0f;
  cfg.max_levels = 6;
  MultiGrid mg(kUniverse, cfg);
  EXPECT_EQ(mg.LevelFor(AABB(Vec3(0, 0, 0), Vec3(0.5f, 0.5f, 0.5f))), 0u);
  EXPECT_EQ(mg.LevelFor(AABB(Vec3(0, 0, 0), Vec3(1.5f, 0.2f, 0.2f))), 1u);
  EXPECT_EQ(mg.LevelFor(AABB(Vec3(0, 0, 0), Vec3(7.0f, 7.0f, 7.0f))), 3u);
  // Oversized elements saturate at the top level.
  EXPECT_EQ(mg.LevelFor(AABB(Vec3(0, 0, 0), Vec3(99, 99, 99))),
            mg.num_levels() - 1);
}

TEST(MultiGridTest, MixedSizeDifferential) {
  // Mixed sizes are the multigrid's reason to exist: one grid would either
  // over-replicate the large elements or over-scan with the small ones.
  Rng rng(8);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 4000; ++i) {
    const float half =
        (i % 10 == 0) ? rng.Uniform(5.0f, 12.0f) : rng.Uniform(0.05f, 0.5f);
    elems.emplace_back(
        i, AABB::FromCenterHalfExtent(rng.PointIn(kUniverse), half));
  }
  MultiGrid mg(kUniverse);
  mg.Build(elems);
  std::string err;
  ASSERT_TRUE(mg.CheckInvariants(&err)) << err;
  for (int q = 0; q < 30; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        rng.PointIn(kUniverse), rng.Uniform(1.0f, 12.0f));
    std::vector<ElementId> got;
    mg.RangeQuery(query, &got);
    EXPECT_EQ(Sorted(got), ScanRange(elems, query)) << "q" << q;
  }
  for (int q = 0; q < 15; ++q) {
    const Vec3 p = rng.PointIn(kUniverse);
    std::vector<ElementId> got;
    mg.KnnQuery(p, 10, &got);
    EXPECT_EQ(got, ScanKnn(elems, p, 10)) << "q" << q;
  }
}

TEST(MultiGridTest, UpdatesMoveAcrossLevels) {
  MultiGrid mg(kUniverse);
  mg.Build({});
  mg.Insert(Element(1, AABB::FromCenterHalfExtent(Vec3(50, 50, 50), 0.2f)));
  const std::size_t small_level =
      mg.LevelFor(AABB::FromCenterHalfExtent(Vec3(50, 50, 50), 0.2f));
  // Grow the element so it must change level.
  ASSERT_TRUE(mg.Update(1, AABB::FromCenterHalfExtent(Vec3(50, 50, 50), 9.0f)));
  const std::size_t big_level =
      mg.LevelFor(AABB::FromCenterHalfExtent(Vec3(50, 50, 50), 9.0f));
  EXPECT_NE(small_level, big_level);
  std::string err;
  EXPECT_TRUE(mg.CheckInvariants(&err)) << err;
  std::vector<ElementId> out;
  mg.RangeQuery(AABB::FromCenterHalfExtent(Vec3(50, 50, 50), 1.0f), &out);
  EXPECT_EQ(out.size(), 1u);
}

// --- Resolution model -------------------------------------------------------

TEST(ResolutionModelTest, StatsComputation) {
  std::vector<Element> elems;
  elems.emplace_back(0, AABB(Vec3(0, 0, 0), Vec3(2, 2, 2)));
  elems.emplace_back(1, AABB(Vec3(5, 5, 5), Vec3(5.5f, 6, 9)));
  const auto stats = DatasetStats::Compute(elems, kUniverse);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_FLOAT_EQ(stats.max_extent, 4.0f);
  EXPECT_NEAR(stats.mean_extent, (2.0 + (0.5 + 1.0 + 4.0) / 3.0) / 2.0, 1e-5);
}

TEST(ResolutionModelTest, CostIsUnimodalish) {
  DatasetStats stats;
  stats.count = 100000;
  stats.universe_volume = 1e6;
  stats.mean_extent = 0.3;
  const double q = 2.0;
  const double tiny = PredictQueryCostNs(stats, q, 0.01);
  const double chosen = PredictQueryCostNs(
      stats, q, ChooseCellSize(stats, q));
  const double huge = PredictQueryCostNs(stats, q, 100.0);
  EXPECT_LT(chosen, tiny);
  EXPECT_LT(chosen, huge);
}

TEST(ResolutionModelTest, ChosenCellBeatsNaiveChoicesEmpirically) {
  // The analytical model's pick must beat clearly-bad resolutions on real
  // measured test counts (the §3.3 "too coarse ... too many elements need
  // to be tested" trade-off).
  const auto elems = GenerateUniformBoxes(20000, kUniverse, 0.1f, 0.6f);
  const auto stats = DatasetStats::Compute(elems, kUniverse);
  const double query_side = 4.0;
  const float chosen = ChooseCellSize(stats, query_side);

  const auto measure = [&](float cell) {
    UniformGrid g(kUniverse, cell);
    g.Build(elems);
    QueryCounters c;
    Rng rng(10);
    std::vector<ElementId> out;
    for (int q = 0; q < 30; ++q) {
      g.RangeQuery(AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                              float(query_side / 2)),
                   &out, &c);
    }
    // Cost proxy: candidate tests plus cell visits.
    return c.element_tests + 4 * c.nodes_visited;
  };

  const auto at_chosen = measure(chosen);
  EXPECT_LT(at_chosen, measure(chosen * 16.0f));   // Far too coarse.
  EXPECT_LT(at_chosen, measure(chosen / 16.0f));   // Far too fine.
}

TEST(ResolutionModelTest, OptimumDependsOnQuerySizeAndDensity) {
  // §3.3: "The optimal resolution, however, also depends on the size of
  // the queries which cannot be known a priori." The model must produce
  // different optima for different query sizes (direction depends on the
  // density regime: at high density the per-candidate term dominates and
  // snapping waste ~ q^2·c pushes big queries towards finer cells).
  DatasetStats dense;
  dense.count = 1000000;
  dense.universe_volume = 1e6;
  dense.mean_extent = 0.1;
  const float dense_small_q = ChooseCellSize(dense, 0.5);
  const float dense_large_q = ChooseCellSize(dense, 20.0);
  EXPECT_GT(std::abs(dense_small_q - dense_large_q),
            0.05f * dense_small_q);

  // Sparser data must prefer coarser cells than dense data (cell-visit
  // overhead amortises over fewer candidates).
  DatasetStats sparse = dense;
  sparse.count = 1000;
  EXPECT_GT(ChooseCellSize(sparse, 2.0), ChooseCellSize(dense, 2.0));
}

}  // namespace
}  // namespace simspatial::grid
