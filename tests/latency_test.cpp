// Latency-tail guard for the ApplyUpdates mutation path (the ISSUE-4
// acceptance gate): with rank-sharded entry blocks AND incremental
// compaction on, a churn-heavy update loop must never pay a stop-the-world
// re-layout — structurally (relayouts == 0 while compaction passes
// complete) and in wall time (the worst single ApplyUpdates stays within a
// generous multiple of the median; a full re-layout at this scale costs
// many medians, so the bound guards the O(n) cliff, not scheduler noise).
//
// Runs serial (threads = 0) at n >= 200k. SIMSPATIAL_LATENCY_N scales the
// loop up for manual measurements (the ROADMAP stall numbers were taken
// with SIMSPATIAL_LATENCY_N=1000000); the printed median/p95/max lines are
// the measurement output (bench::PercentileRecorder, the same accumulator
// the serving harness reports tails with).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/bruteforce.h"
#include "common/counters.h"
#include "common/rng.h"
#include "core/memgrid.h"
#include "datagen/neuron.h"

namespace simspatial::core {
namespace {

struct ChurnRun {
  bench::PercentileRecorder batch_ms;  ///< per-ApplyUpdates wall ms
  MemGridUpdateStats stats;
  /// The end state, owned here so differential checks outlive the loop.
  std::vector<Element> mirror;
  std::unique_ptr<MemGrid> grid;
};

/// Drive `rounds` SPARSE churn batches (2% of the population teleports per
/// round — the latency-sensitive regime: each batch is O(n/50), so an
/// O(n) re-layout hiding inside one ApplyUpdates dwarfs the median by a
/// factor of tens) and record per-batch wall time. The teleports relocate
/// their destination regions continuously, which is exactly the churn that
/// grows the blocks toward the re-layout triggers.
ChurnRun RunChurnLoop(std::size_t n, std::uint32_t shards,
                      std::uint32_t compact, int rounds) {
  const float side = std::max(
      50.0f, 2.0f * static_cast<float>(std::cbrt(static_cast<double>(n) /
                                                 4.0)));
  const AABB universe(Vec3(0, 0, 0), Vec3(side, side, side));
  ChurnRun run;
  run.mirror = datagen::GenerateUniformBoxes(n, universe, 0.05f, 0.4f);
  run.grid = std::make_unique<MemGrid>(
      universe, MemGridConfig{.cell_size = 2.0f,
                              .threads = 0,
                              .shards = shards,
                              .compact_regions_per_batch = compact});
  MemGrid& g = *run.grid;
  g.Build(run.mirror);
  Rng rng(7);
  std::vector<ElementUpdate> batch;
  const std::size_t batch_size = std::max<std::size_t>(1, n / 50);
  batch.reserve(batch_size);
  for (int round = 0; round < rounds; ++round) {
    batch.clear();
    for (std::size_t i = 0; i < batch_size; ++i) {
      Element& e = run.mirror[rng.NextBelow(run.mirror.size())];
      e.box = AABB::FromCenterHalfExtent(rng.PointIn(universe),
                                         rng.Uniform(0.05f, 0.4f));
      batch.emplace_back(e.id, e.box);
    }
    Stopwatch sw;
    g.ApplyUpdates(batch);
    run.batch_ms.Add(sw.ElapsedMs());
  }
  run.stats = g.update_stats();
  return run;
}

TEST(LatencyTailTest, IncrementalCompactionBoundsApplyUpdatesStall) {
  std::size_t n = 200000;
  if (const char* env = std::getenv("SIMSPATIAL_LATENCY_N")) {
    n = std::max<std::size_t>(1000, std::strtoull(env, nullptr, 10));
  }
  const int rounds = 200;

  // Sharded + incremental: the configuration the acceptance gate is about.
  const ChurnRun inc = RunChurnLoop(n, 8, 1024, rounds);
  const double inc_med = inc.batch_ms.P50();
  const double inc_max = inc.batch_ms.Max();
  std::printf("latency[n=%zu shards=8 compact=1024]: median %.3f ms, "
              "p95 %.3f ms, max %.3f ms (x%.1f), relayouts %llu, "
              "passes %llu, regions %llu\n",
              n, inc_med, inc.batch_ms.P95(), inc_max,
              inc_med > 0 ? inc_max / inc_med : 0.0,
              static_cast<unsigned long long>(inc.stats.relayouts),
              static_cast<unsigned long long>(inc.stats.compaction_passes),
              static_cast<unsigned long long>(inc.stats.compacted_regions));

  // Structural guard (timing-independent): churn was reclaimed by
  // completed incremental passes, never by a stop-the-shard re-layout.
  EXPECT_EQ(inc.stats.relayouts, 0u);
  EXPECT_GT(inc.stats.compaction_passes, 0u);

  // Latency-tail guard: generous bound — a full single-block re-layout at
  // this scale costs several medians on top of the batch, and the bound
  // must survive a busy CI box. Skipped if the box is so fast/small that
  // the median is noise-dominated.
  if (inc_med >= 0.02) {
    EXPECT_LE(inc_max, 40.0 * inc_med)
        << "an ApplyUpdates stall spiked far past the median with "
           "incremental compaction on";
  }

  // Exactness after (and despite) all the churn and mid-pass states.
  std::string err;
  ASSERT_TRUE(inc.grid->CheckInvariants(&err)) << err;
  Rng qrng(13);
  const AABB universe = inc.grid->universe();
  for (int q = 0; q < 6; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(qrng.PointIn(universe),
                                                  qrng.Uniform(2.0f, 8.0f));
    std::vector<ElementId> got;
    inc.grid->RangeQuery(query, &got);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, ScanRange(inc.mirror, query)) << "q" << q;
  }

  // Control: the identical churn on the single-block, no-compaction
  // configuration DOES pay re-layout spikes — the O(n) cliff this PR
  // removes is real, not hypothetical. (Structural assert only; its wall
  // time is printed for the record.)
  const ChurnRun base = RunChurnLoop(n, 1, 0, rounds);
  const double base_med = base.batch_ms.P50();
  const double base_max = base.batch_ms.Max();
  std::printf("latency[n=%zu shards=1 compact=0   ]: median %.3f ms, "
              "p95 %.3f ms, max %.3f ms (x%.1f), relayouts %llu\n",
              n, base_med, base.batch_ms.P95(), base_max,
              base_med > 0 ? base_max / base_med : 0.0,
              static_cast<unsigned long long>(base.stats.relayouts));
  EXPECT_GT(base.stats.relayouts, 0u)
      << "the churn loop no longer triggers the single-block re-layout; "
         "raise the migration pressure so the control stays meaningful";
}

}  // namespace
}  // namespace simspatial::core
