// Simulated disk, cost model, and buffer pool tests.

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/page_store.h"

namespace simspatial::storage {
namespace {

TEST(DiskModelTest, RandomReadDominatedBySeek) {
  const DiskModel m;
  const double random_ns = m.ReadCostNs(/*sequential=*/false);
  const double seq_ns = m.ReadCostNs(/*sequential=*/true);
  EXPECT_GT(random_ns, 1e6);       // Milliseconds, like a real disk.
  EXPECT_LT(seq_ns, random_ns / 10);  // Sequential skips the seek.
}

TEST(DiskModelTest, InMemoryModelIsEffectivelyFree) {
  const DiskModel m = DiskModel::InMemory();
  EXPECT_LT(m.ReadCostNs(false), 100.0);
  EXPECT_LT(m.ReadCostNs(true), 100.0);
}

TEST(PageStoreTest, WriteReadRoundTrip) {
  PageStore store;
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  std::vector<std::byte> payload(store.page_size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i & 0xff);
  }
  store.Write(b, payload);
  std::vector<std::byte> out(store.page_size());
  QueryCounters c;
  store.Read(b, out.data(), &c);
  EXPECT_EQ(std::memcmp(out.data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(c.pages_read, 1u);
  EXPECT_EQ(c.bytes_read, store.page_size());
  EXPECT_GT(c.io_virtual_ns, 0u);
}

TEST(PageStoreTest, SequentialReadsChargeLess) {
  PageStore store;
  for (int i = 0; i < 10; ++i) store.Allocate();
  std::vector<std::byte> buf(store.page_size());

  QueryCounters random;
  store.ResetHead();
  store.Read(0, buf.data(), &random);
  store.Read(5, buf.data(), &random);
  store.Read(2, buf.data(), &random);

  QueryCounters sequential;
  store.ResetHead();
  store.Read(3, buf.data(), &sequential);
  store.Read(4, buf.data(), &sequential);
  store.Read(5, buf.data(), &sequential);

  EXPECT_LT(sequential.io_virtual_ns, random.io_virtual_ns);
}

TEST(BufferPoolTest, HitAvoidsDiskCharge) {
  PageStore store;
  const PageId p = store.Allocate();
  BufferPool pool(&store, 4);

  QueryCounters c1;
  { const auto g = pool.Fetch(p, &c1); }
  EXPECT_EQ(c1.pages_read, 1u);
  EXPECT_EQ(c1.buffer_hits, 0u);

  QueryCounters c2;
  { const auto g = pool.Fetch(p, &c2); }
  EXPECT_EQ(c2.pages_read, 0u);
  EXPECT_EQ(c2.buffer_hits, 1u);
  EXPECT_EQ(c2.io_virtual_ns, 0u);
}

TEST(BufferPoolTest, EvictsLruUnderPressure) {
  PageStore store;
  for (int i = 0; i < 8; ++i) store.Allocate();
  BufferPool pool(&store, 2);

  QueryCounters c;
  { const auto g = pool.Fetch(0, &c); }
  { const auto g = pool.Fetch(1, &c); }
  { const auto g = pool.Fetch(2, &c); }  // Evicts page 0.
  EXPECT_EQ(pool.resident_pages(), 2u);

  QueryCounters c2;
  { const auto g = pool.Fetch(0, &c2); }  // Miss again.
  EXPECT_EQ(c2.pages_read, 1u);
  QueryCounters c3;
  { const auto g = pool.Fetch(2, &c3); }  // 2 was MRU; maybe still resident.
  EXPECT_EQ(c3.buffer_hits + c3.pages_read, 1u);
}

TEST(BufferPoolTest, PinnedPagesSurviveEviction) {
  PageStore store;
  for (int i = 0; i < 4; ++i) store.Allocate();
  BufferPool pool(&store, 2);

  QueryCounters c;
  const auto pinned = pool.Fetch(0, &c);  // Held alive.
  { const auto g = pool.Fetch(1, &c); }
  { const auto g = pool.Fetch(2, &c); }   // Must evict page 1, not page 0.
  EXPECT_EQ(pool.pinned_frames(), 1u);

  QueryCounters c2;
  { const auto g = pool.Fetch(0, &c2); }
  EXPECT_EQ(c2.buffer_hits, 1u);  // Page 0 never left.
}

TEST(BufferPoolTest, ClearImplementsColdCacheProtocol) {
  PageStore store;
  const PageId p = store.Allocate();
  BufferPool pool(&store, 4);
  QueryCounters c;
  { const auto g = pool.Fetch(p, &c); }
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
  QueryCounters c2;
  { const auto g = pool.Fetch(p, &c2); }
  EXPECT_EQ(c2.pages_read, 1u);  // Re-read from "disk" after the clear.
}

TEST(BufferPoolTest, GuardMoveSemantics) {
  PageStore store;
  const PageId p = store.Allocate();
  BufferPool pool(&store, 2);
  QueryCounters c;
  auto g1 = pool.Fetch(p, &c);
  EXPECT_TRUE(g1.valid());
  auto g2 = std::move(g1);
  EXPECT_TRUE(g2.valid());
  EXPECT_FALSE(g1.valid());  // NOLINT(bugprone-use-after-move): testing move.
  EXPECT_EQ(pool.pinned_frames(), 1u);
  // Self-move must be a no-op, not a double release (the pointer
  // indirection keeps -Wself-move quiet).
  auto* self = &g2;
  g2 = std::move(*self);
  EXPECT_TRUE(g2.valid());
  EXPECT_EQ(pool.pinned_frames(), 1u);
}

TEST(BufferPoolTest, ExhaustedPoolReturnsInvalidGuardAndRecovers) {
  PageStore store;
  for (int i = 0; i < 4; ++i) store.Allocate();
  BufferPool pool(&store, 2);
  QueryCounters c;
  const auto a = pool.Fetch(0, &c);
  auto b = pool.Fetch(1, &c);
  ASSERT_EQ(pool.pinned_frames(), 2u);
  {
    // Every frame pinned: a miss cannot evict — graceful refusal, not an
    // abort, and nothing is left half-initialised.
    const auto overflow = pool.Fetch(2, &c);
    EXPECT_FALSE(overflow.valid());
  }
  EXPECT_EQ(pool.pinned_frames(), 2u);
  EXPECT_EQ(pool.resident_pages(), 2u);
  // Releasing a pin makes the same fetch succeed.
  b = BufferPool::PageGuard();
  const auto retry = pool.Fetch(2, &c);
  EXPECT_TRUE(retry.valid());
}

TEST(PageStoreTest, SequentialAccountingSurvivesInterleavedAllocations) {
  PageStore store;
  for (int i = 0; i < 6; ++i) store.Allocate();
  std::vector<std::byte> buf(store.page_size());
  // Adjacent-id reads are sequential regardless of how the pages were
  // allocated; one backwards jump re-pays the seek.
  QueryCounters c;
  store.ResetHead();
  store.Read(2, buf.data(), &c);
  const std::uint64_t first = c.io_virtual_ns;
  store.Read(3, buf.data(), &c);
  const std::uint64_t second = c.io_virtual_ns - first;
  store.Read(2, buf.data(), &c);
  const std::uint64_t third = c.io_virtual_ns - first - second;
  EXPECT_LT(second, first / 10);  // Sequential: transfer only.
  EXPECT_GE(third, first);        // Backwards: full seek again.
  EXPECT_EQ(c.pages_read, 3u);
  EXPECT_EQ(c.io_retries, 0u);
}

TEST(PageStoreTest, SealUnsealLifecycle) {
  PageStore store;
  const PageId p = store.Allocate();
  EXPECT_TRUE(store.IsSealed(p));  // All-zero content is valid content.

  // The mutable builder pointer unseals; reads still work (unverified).
  std::byte* raw = store.PagePtr(p);
  EXPECT_FALSE(store.IsSealed(p));
  for (std::size_t i = 0; i < store.page_size(); ++i) {
    raw[i] = static_cast<std::byte>(i * 7 + 1);
  }
  std::vector<std::byte> out(store.page_size());
  store.Read(p, out.data(), nullptr);
  EXPECT_EQ(std::memcmp(out.data(), raw, store.page_size()), 0);

  // Sealing records the content; verified reads keep succeeding.
  store.Seal(p);
  EXPECT_TRUE(store.IsSealed(p));
  store.Read(p, out.data(), nullptr);
  EXPECT_EQ(std::memcmp(out.data(), raw, store.page_size()), 0);

  // The const pointer does NOT unseal.
  const PageStore& cstore = store;
  (void)cstore.PagePtr(p);
  EXPECT_TRUE(store.IsSealed(p));

  // SealAll covers pages left open by a bulk loader.
  (void)store.PagePtr(p);
  EXPECT_FALSE(store.IsSealed(p));
  store.SealAll();
  EXPECT_TRUE(store.IsSealed(p));
}

TEST(PageStoreTest, WriteSealsAndVerifiedReadChargesNoRetries) {
  PageStore store;
  const PageId p = store.Allocate();
  std::vector<std::byte> payload(store.page_size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(255 - (i & 0xff));
  }
  store.Write(p, payload);
  EXPECT_TRUE(store.IsSealed(p));
  std::vector<std::byte> out(store.page_size());
  QueryCounters c;
  store.Read(p, out.data(), &c);
  EXPECT_EQ(std::memcmp(out.data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(c.io_retries, 0u);
  EXPECT_EQ(c.pages_read, 1u);
}

}  // namespace
}  // namespace simspatial::storage
