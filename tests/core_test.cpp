// MemGrid and the registry-wide differential battery: every registered
// index must agree with brute force on every dataset shape.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/bruteforce.h"
#include "common/rng.h"
#include "core/memgrid.h"
#include "core/spatial_index.h"
#include "datagen/neuron.h"
#include "datagen/plasticity.h"

namespace simspatial::core {
namespace {

using datagen::GenerateClusteredBoxes;
using datagen::GenerateUniformBoxes;

const AABB kUniverse(Vec3(0, 0, 0), Vec3(100, 100, 100));

std::vector<ElementId> Sorted(std::vector<ElementId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// --- MemGrid ------------------------------------------------------------

TEST(MemGridTest, EmptyGrid) {
  MemGrid g(kUniverse);
  std::vector<ElementId> out;
  g.RangeQuery(kUniverse, &out);
  EXPECT_TRUE(out.empty());
  g.KnnQuery(Vec3(0, 0, 0), 5, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(g.CheckInvariants(nullptr));
}

TEST(MemGridTest, RangeAndKnnDifferential) {
  const auto elems = GenerateClusteredBoxes(6000, kUniverse, 10, 5.0f, 0.1f,
                                            0.8f);
  MemGridConfig cfg;
  cfg.cell_size = 3.0f;
  MemGrid g(kUniverse, cfg);
  g.Build(elems);
  std::string err;
  ASSERT_TRUE(g.CheckInvariants(&err)) << err;
  Rng rng(81);
  for (int q = 0; q < 40; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        rng.PointIn(kUniverse), rng.Uniform(0.5f, 12.0f));
    std::vector<ElementId> got;
    g.RangeQuery(query, &got);
    EXPECT_EQ(Sorted(got), ScanRange(elems, query)) << "q" << q;
  }
  for (int q = 0; q < 20; ++q) {
    const Vec3 p = rng.PointIn(kUniverse);
    std::vector<ElementId> got;
    g.KnnQuery(p, 12, &got);
    EXPECT_EQ(got, ScanKnn(elems, p, 12)) << "q" << q;
  }
}

TEST(MemGridTest, MixedElementSizesStayExact) {
  // Large elements stress the probe-inflation completeness bound.
  Rng rng(82);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 3000; ++i) {
    const float half = (i % 25 == 0) ? 8.0f : 0.2f;
    elems.emplace_back(
        i, AABB::FromCenterHalfExtent(rng.PointIn(kUniverse), half));
  }
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 4.0f});
  g.Build(elems);
  for (int q = 0; q < 30; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        rng.PointIn(kUniverse), rng.Uniform(0.5f, 6.0f));
    std::vector<ElementId> got;
    g.RangeQuery(query, &got);
    EXPECT_EQ(Sorted(got), ScanRange(elems, query)) << "q" << q;
  }
}

TEST(MemGridTest, PlasticityUpdatesAreOverwhelminglyInPlace) {
  // The §4.3/§5 headline: with paper-calibrated displacements, almost no
  // update changes cell.
  auto ds = datagen::GenerateNeuronsWithSize(20000);
  MemGridConfig cfg;
  cfg.cell_size = 5.0f;
  MemGrid g(ds.universe, cfg);
  g.Build(ds.elements);
  datagen::PlasticityConfig pcfg;  // 0.04 µm mean displacement.
  datagen::PlasticityModel model(pcfg, ds.universe);
  std::vector<ElementUpdate> updates;
  for (int step = 0; step < 3; ++step) {
    model.Step(&ds.elements, &updates);
    EXPECT_EQ(g.ApplyUpdates(updates), updates.size());
  }
  EXPECT_GT(g.update_stats().InPlaceFraction(), 0.97);
  std::string err;
  EXPECT_TRUE(g.CheckInvariants(&err)) << err;
}

TEST(MemGridTest, SelfJoinMatchesReference) {
  const auto elems = GenerateUniformBoxes(1500, kUniverse, 0.2f, 0.8f);
  MemGridConfig cfg;
  cfg.cell_size = 2.5f;  // >= 2*max_half_extent + eps.
  MemGrid g(kUniverse, cfg);
  g.Build(elems);
  for (const float eps : {0.0f, 0.5f}) {
    std::vector<std::pair<ElementId, ElementId>> got;
    g.SelfJoin(eps, &got);
    SortPairs(&got);
    auto want = NestedLoopSelfJoin(elems, eps);
    SortPairs(&want);
    EXPECT_EQ(got, want) << "eps=" << eps;
  }
}

TEST(MemGridTest, InsertEraseUpdateSoak) {
  Rng rng(83);
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 5.0f});
  g.Build({});
  std::vector<Element> mirror;
  ElementId next = 0;
  for (int step = 0; step < 3000; ++step) {
    const float dice = rng.NextFloat();
    if (dice < 0.45f || mirror.empty()) {
      const Element e(next++, AABB::FromCenterHalfExtent(
                                  rng.PointIn(kUniverse),
                                  rng.Uniform(0.1f, 1.0f)));
      g.Insert(e);
      mirror.push_back(e);
    } else if (dice < 0.65f) {
      const std::size_t i = rng.NextBelow(mirror.size());
      EXPECT_TRUE(g.Erase(mirror[i].id));
      mirror[i] = mirror.back();
      mirror.pop_back();
    } else if (dice < 0.85f) {
      const std::size_t i = rng.NextBelow(mirror.size());
      const AABB nb = AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                 rng.Uniform(0.1f, 1.0f));
      EXPECT_TRUE(g.Update(mirror[i].id, nb));
      mirror[i].box = nb;
    } else {
      const AABB q = AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                rng.Uniform(1.0f, 12.0f));
      std::vector<ElementId> got;
      g.RangeQuery(q, &got);
      ASSERT_EQ(Sorted(got), Sorted(ScanRange(mirror, q))) << "step " << step;
    }
  }
  std::string err;
  EXPECT_TRUE(g.CheckInvariants(&err)) << err;
}

TEST(MemGridTest, CompactModePreservesSemantics) {
  const auto elems = GenerateClusteredBoxes(4000, kUniverse, 8, 5.0f, 0.1f,
                                            0.8f);
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 3.0f});
  g.Build(elems);
  g.Compact();
  EXPECT_TRUE(g.compacted());
  g.Compact();  // Idempotent.
  std::string err;
  ASSERT_TRUE(g.CheckInvariants(&err)) << err;

  Rng rng(84);
  for (int q = 0; q < 25; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        rng.PointIn(kUniverse), rng.Uniform(1.0f, 10.0f));
    std::vector<ElementId> got;
    g.RangeQuery(query, &got);
    EXPECT_EQ(Sorted(got), ScanRange(elems, query)) << "q" << q;
  }
  std::vector<ElementId> knn;
  g.KnnQuery(Vec3(50, 50, 50), 7, &knn);
  EXPECT_EQ(knn, ScanKnn(elems, Vec3(50, 50, 50), 7));

  // Mutation transparently unpacks.
  EXPECT_TRUE(g.Update(0, AABB::FromCenterHalfExtent(Vec3(1, 1, 1), 0.3f)));
  EXPECT_FALSE(g.compacted());
  ASSERT_TRUE(g.CheckInvariants(&err)) << err;
  std::vector<ElementId> out;
  g.RangeQuery(AABB::FromCenterHalfExtent(Vec3(1, 1, 1), 1.0f), &out);
  EXPECT_NE(std::find(out.begin(), out.end(), 0u), out.end());
}

TEST(MemGridTest, CompactSelfJoinMatchesDynamic) {
  const auto elems = GenerateUniformBoxes(1200, kUniverse, 0.2f, 0.8f);
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 2.5f});
  g.Build(elems);
  std::vector<std::pair<ElementId, ElementId>> dynamic_pairs;
  g.SelfJoin(0.4f, &dynamic_pairs);
  SortPairs(&dynamic_pairs);
  g.Compact();
  std::vector<std::pair<ElementId, ElementId>> compact_pairs;
  g.SelfJoin(0.4f, &compact_pairs);
  SortPairs(&compact_pairs);
  EXPECT_EQ(dynamic_pairs, compact_pairs);
}

TEST(MemGridTest, RebuildIsCheaperThanPerElementWork) {
  // Build must be a small constant per element (O(n) scatter); this is a
  // sanity guard, not a benchmark.
  const auto elems = GenerateUniformBoxes(200000, kUniverse, 0.05f, 0.3f);
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 2.0f});
  Stopwatch sw;
  g.Build(elems);
  EXPECT_LT(sw.ElapsedSeconds(), 2.0);
  EXPECT_EQ(g.size(), elems.size());
}

// --- Registry-wide differential battery ----------------------------------

struct RegistryCase {
  std::string index;
  int dataset;  // 0 uniform, 1 clustered, 2 neurons.
};

std::vector<Element> MakeDataset(int dataset, std::size_t n) {
  switch (dataset) {
    case 0:
      return GenerateUniformBoxes(n, kUniverse, 0.05f, 1.0f);
    case 1:
      return GenerateClusteredBoxes(n, kUniverse, 10, 5.0f, 0.05f, 0.8f);
    default:
      return datagen::GenerateNeuronsWithSize(n).elements;
  }
}

class RegistryDifferentialTest
    : public ::testing::TestWithParam<RegistryCase> {};

TEST_P(RegistryDifferentialTest, RangeAndKnnAgainstBruteForce) {
  const RegistryCase& c = GetParam();
  auto index = MakeIndex(c.index);
  ASSERT_NE(index, nullptr) << c.index;
  const auto elems = MakeDataset(c.dataset, 3000);
  const AABB universe =
      c.dataset == 2 ? AABB(Vec3(0, 0, 0), Vec3(285, 285, 285)) : kUniverse;
  index->Build(elems, universe);
  EXPECT_EQ(index->size(), elems.size());

  Rng rng(91);
  const AABB bounds = BoundsOf(elems);
  if (index->SupportsRangeQueries()) {
    for (int q = 0; q < 25; ++q) {
      const AABB query = AABB::FromCenterHalfExtent(
          rng.PointIn(bounds), rng.Uniform(0.5f, 15.0f));
      std::vector<ElementId> got;
      index->RangeQuery(query, &got);
      ASSERT_EQ(Sorted(got), ScanRange(elems, query))
          << c.index << " q" << q;
    }
  }
  for (int q = 0; q < 12; ++q) {
    const Vec3 p = rng.PointIn(bounds);
    std::vector<ElementId> got;
    index->KnnQuery(p, 8, &got);
    const auto want = ScanKnn(elems, p, 8);
    if (index->KnnIsExact()) {
      ASSERT_EQ(got, want) << c.index << " q" << q;
    } else {
      // Approximate contract: no garbage ids, sane size.
      EXPECT_LE(got.size(), 8u);
      for (const ElementId id : got) EXPECT_LT(id, elems.size());
    }
  }
}

TEST_P(RegistryDifferentialTest, UpdatesKeepExactness) {
  const RegistryCase& c = GetParam();
  auto index = MakeIndex(c.index);
  ASSERT_NE(index, nullptr);
  if (!index->SupportsUpdates() || !index->SupportsRangeQueries()) {
    GTEST_SKIP() << c.index << " is static or kNN-only";
  }
  auto elems = MakeDataset(c.dataset, 2000);
  const AABB universe =
      c.dataset == 2 ? AABB(Vec3(0, 0, 0), Vec3(285, 285, 285)) : kUniverse;
  index->Build(elems, universe);

  Rng rng(92);
  std::vector<ElementUpdate> updates;
  for (int round = 0; round < 3; ++round) {
    updates.clear();
    for (Element& e : elems) {
      e.box = e.box.Translated(Vec3(rng.Normal(0, 0.3f),
                                    rng.Normal(0, 0.3f),
                                    rng.Normal(0, 0.3f)));
      updates.emplace_back(e.id, e.box);
    }
    EXPECT_EQ(index->ApplyUpdates(updates), updates.size()) << c.index;
    for (int q = 0; q < 8; ++q) {
      const AABB query = AABB::FromCenterHalfExtent(
          rng.PointIn(BoundsOf(elems)), rng.Uniform(1.0f, 10.0f));
      std::vector<ElementId> got;
      index->RangeQuery(query, &got);
      ASSERT_EQ(Sorted(got), Sorted(ScanRange(elems, query)))
          << c.index << " round " << round;
    }
  }
}

std::vector<RegistryCase> AllCases() {
  std::vector<RegistryCase> cases;
  for (const std::string& name : AllIndexNames()) {
    for (int ds = 0; ds < 3; ++ds) {
      cases.push_back({name, ds});
    }
  }
  return cases;
}

std::string RegistryCaseName(
    const ::testing::TestParamInfo<RegistryCase>& info) {
  static const char* kDatasets[] = {"uniform", "clustered", "neurons"};
  std::string n = info.param.index + "_" + kDatasets[info.param.dataset];
  std::replace(n.begin(), n.end(), '-', '_');
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, RegistryDifferentialTest,
                         ::testing::ValuesIn(AllCases()), RegistryCaseName);

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeIndex("no-such-index"), nullptr);
}

TEST(RegistryTest, AllNamesConstructible) {
  for (const std::string& name : AllIndexNames()) {
    EXPECT_NE(MakeIndex(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace simspatial::core
