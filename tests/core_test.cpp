// MemGrid and the registry-wide differential battery: every registered
// index must agree with brute force on every dataset shape.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/bruteforce.h"
#include "common/rng.h"
#include "core/memgrid.h"
#include "core/spatial_index.h"
#include "datagen/neuron.h"
#include "datagen/plasticity.h"

namespace simspatial::core {
namespace {

using datagen::GenerateClusteredBoxes;
using datagen::GenerateUniformBoxes;

const AABB kUniverse(Vec3(0, 0, 0), Vec3(100, 100, 100));

std::vector<ElementId> Sorted(std::vector<ElementId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// --- MemGrid ------------------------------------------------------------

TEST(MemGridTest, EmptyGrid) {
  MemGrid g(kUniverse);
  std::vector<ElementId> out;
  g.RangeQuery(kUniverse, &out);
  EXPECT_TRUE(out.empty());
  g.KnnQuery(Vec3(0, 0, 0), 5, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(g.CheckInvariants(nullptr));
}

TEST(MemGridTest, RangeAndKnnDifferential) {
  const auto elems = GenerateClusteredBoxes(6000, kUniverse, 10, 5.0f, 0.1f,
                                            0.8f);
  MemGridConfig cfg;
  cfg.cell_size = 3.0f;
  MemGrid g(kUniverse, cfg);
  g.Build(elems);
  std::string err;
  ASSERT_TRUE(g.CheckInvariants(&err)) << err;
  Rng rng(81);
  for (int q = 0; q < 40; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        rng.PointIn(kUniverse), rng.Uniform(0.5f, 12.0f));
    std::vector<ElementId> got;
    g.RangeQuery(query, &got);
    EXPECT_EQ(Sorted(got), ScanRange(elems, query)) << "q" << q;
  }
  for (int q = 0; q < 20; ++q) {
    const Vec3 p = rng.PointIn(kUniverse);
    std::vector<ElementId> got;
    g.KnnQuery(p, 12, &got);
    EXPECT_EQ(got, ScanKnn(elems, p, 12)) << "q" << q;
  }
}

TEST(MemGridTest, MixedElementSizesStayExact) {
  // Large elements stress the probe-inflation completeness bound.
  Rng rng(82);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 3000; ++i) {
    const float half = (i % 25 == 0) ? 8.0f : 0.2f;
    elems.emplace_back(
        i, AABB::FromCenterHalfExtent(rng.PointIn(kUniverse), half));
  }
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 4.0f});
  g.Build(elems);
  for (int q = 0; q < 30; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        rng.PointIn(kUniverse), rng.Uniform(0.5f, 6.0f));
    std::vector<ElementId> got;
    g.RangeQuery(query, &got);
    EXPECT_EQ(Sorted(got), ScanRange(elems, query)) << "q" << q;
  }
}

TEST(MemGridTest, PlasticityUpdatesAreOverwhelminglyInPlace) {
  // The §4.3/§5 headline: with paper-calibrated displacements, almost no
  // update changes cell.
  auto ds = datagen::GenerateNeuronsWithSize(20000);
  MemGridConfig cfg;
  cfg.cell_size = 5.0f;
  MemGrid g(ds.universe, cfg);
  g.Build(ds.elements);
  datagen::PlasticityConfig pcfg;  // 0.04 µm mean displacement.
  datagen::PlasticityModel model(pcfg, ds.universe);
  std::vector<ElementUpdate> updates;
  for (int step = 0; step < 3; ++step) {
    model.Step(&ds.elements, &updates);
    EXPECT_EQ(g.ApplyUpdates(updates), updates.size());
  }
  EXPECT_GT(g.update_stats().InPlaceFraction(), 0.97);
  std::string err;
  EXPECT_TRUE(g.CheckInvariants(&err)) << err;
}

// The per-shell distance lower bound must stop kNN shell expansion early
// WITHOUT changing results — exactness is checked against the linear scan
// on clustered data with coarse cells, the regime where the plain radius
// doubling overshoots by a whole shell (the ROADMAP item this closes).
TEST(MemGridTest, KnnShellLowerBoundStaysExactOnClusteredData) {
  const auto elems =
      GenerateClusteredBoxes(8000, kUniverse, 6, 3.0f, 0.1f, 0.7f);
  for (const CellLayout layout :
       {CellLayout::kRowMajor, CellLayout::kMorton, CellLayout::kHilbert}) {
    MemGridConfig cfg;
    cfg.cell_size = 6.0f;  // Coarse cells: shells expose many elements.
    cfg.layout = layout;
    MemGrid g(kUniverse, cfg);
    g.Build(elems);
    Rng rng(77);
    for (int q = 0; q < 24; ++q) {
      // Alternate probes inside clusters (dense, early stop matters) and
      // in the void between them (sparse, expansion must keep going).
      const Vec3 p = q % 2 == 0
                         ? elems[rng.NextBelow(elems.size())].Center()
                         : rng.PointIn(kUniverse);
      for (const std::size_t k : {std::size_t{1}, std::size_t{7},
                                  std::size_t{33}}) {
        std::vector<ElementId> got;
        g.KnnQuery(p, k, &got);
        ASSERT_EQ(got, ScanKnn(elems, p, k))
            << "layout=" << ToString(layout) << " q" << q << " k=" << k;
      }
    }
  }
}

// Satellite audit of the kNN per-shell float-safety margin: the shell
// lower bound (gap - max_half_extent - 1e-3*cell) must never stop the
// expansion early on the degenerate inputs where the bound is tightest —
// zero-half-extent points (mhe contributes nothing), exact duplicates
// (distance ties resolved by id), query points EXACTLY on cell faces and
// lattice corners (gap == 0 on both sides of the face), probes outside
// the universe (CellCoords clamps into boundary cells) and k >= n (the
// expansion must run to grid exhaustion). Differential vs the linear scan
// across every layout and a sharded storage config.
TEST(MemGridTest, KnnDegenerateInputsStayExactAcrossLayouts) {
  const float cell = 4.0f;
  Rng rng(87);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 300; ++i) {
    Vec3 c;
    if (i % 3 == 0) {
      // Centres exactly on the cell lattice (faces, edges, corners).
      c = Vec3(cell * static_cast<float>(i % 26),
               cell * static_cast<float>((i / 5) % 26),
               cell * static_cast<float>((i / 7) % 26));
    } else {
      c = rng.PointIn(kUniverse);
    }
    if (i % 10 == 0 && i > 0) c = elems[i - 1].Center();  // Exact duplicate.
    elems.emplace_back(i, AABB::FromCenterHalfExtent(c, 0.0f));  // Points.
  }
  std::vector<Vec3> probes;
  // On-face / on-corner probes, including the universe boundary.
  probes.emplace_back(0, 0, 0);
  probes.emplace_back(cell, cell, cell);
  probes.emplace_back(cell * 12, cell * 7, cell * 3);
  probes.emplace_back(100, 100, 100);
  probes.emplace_back(cell * 5, 17.3f, 42.9f);  // Face in x only.
  // Outside the universe (clamped into boundary cells).
  probes.emplace_back(-7, 50, 50);
  probes.emplace_back(108, 108, -3);
  // On top of elements (distance exactly 0).
  probes.push_back(elems[0].Center());
  probes.push_back(elems[30].Center());
  for (const CellLayout layout :
       {CellLayout::kRowMajor, CellLayout::kMorton, CellLayout::kHilbert}) {
    for (const std::uint32_t shards : {1u, 4u}) {
      MemGrid g(kUniverse, MemGridConfig{.cell_size = cell,
                                         .layout = layout,
                                         .shards = shards});
      g.Build(elems);
      for (std::size_t p = 0; p < probes.size(); ++p) {
        for (const std::size_t k :
             {std::size_t{1}, std::size_t{7}, std::size_t{299},
              std::size_t{300}, std::size_t{350}}) {
          std::vector<ElementId> got;
          g.KnnQuery(probes[p], k, &got);
          ASSERT_EQ(got, ScanKnn(elems, probes[p], k))
              << "layout=" << ToString(layout) << " shards=" << shards
              << " probe " << p << " k=" << k;
        }
      }
    }
  }
}

TEST(MemGridTest, SelfJoinMatchesReference) {
  const auto elems = GenerateUniformBoxes(1500, kUniverse, 0.2f, 0.8f);
  MemGridConfig cfg;
  cfg.cell_size = 2.5f;  // >= 2*max_half_extent + eps.
  MemGrid g(kUniverse, cfg);
  g.Build(elems);
  for (const float eps : {0.0f, 0.5f}) {
    std::vector<std::pair<ElementId, ElementId>> got;
    g.SelfJoin(eps, &got);
    SortPairs(&got);
    auto want = NestedLoopSelfJoin(elems, eps);
    SortPairs(&want);
    EXPECT_EQ(got, want) << "eps=" << eps;
  }
}

TEST(MemGridTest, InsertEraseUpdateSoak) {
  Rng rng(83);
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 5.0f});
  g.Build({});
  std::vector<Element> mirror;
  ElementId next = 0;
  for (int step = 0; step < 3000; ++step) {
    const float dice = rng.NextFloat();
    if (dice < 0.45f || mirror.empty()) {
      const Element e(next++, AABB::FromCenterHalfExtent(
                                  rng.PointIn(kUniverse),
                                  rng.Uniform(0.1f, 1.0f)));
      g.Insert(e);
      mirror.push_back(e);
    } else if (dice < 0.65f) {
      const std::size_t i = rng.NextBelow(mirror.size());
      EXPECT_TRUE(g.Erase(mirror[i].id));
      mirror[i] = mirror.back();
      mirror.pop_back();
    } else if (dice < 0.85f) {
      const std::size_t i = rng.NextBelow(mirror.size());
      const AABB nb = AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                 rng.Uniform(0.1f, 1.0f));
      EXPECT_TRUE(g.Update(mirror[i].id, nb));
      mirror[i].box = nb;
    } else {
      const AABB q = AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                rng.Uniform(1.0f, 12.0f));
      std::vector<ElementId> got;
      g.RangeQuery(q, &got);
      ASSERT_EQ(Sorted(got), Sorted(ScanRange(mirror, q))) << "step " << step;
    }
  }
  std::string err;
  EXPECT_TRUE(g.CheckInvariants(&err)) << err;
}

TEST(MemGridTest, SlackExhaustionRelayoutKeepsQueriesExact) {
  // Hammer a single cell with inserts so its region outgrows every slack
  // grant: regions must relocate, dead space must accumulate, and the full
  // re-layout must eventually fire — all invisible to queries.
  Rng rng(84);
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 5.0f});
  g.Build({});
  std::vector<Element> mirror;
  const Vec3 hot(2.5f, 2.5f, 2.5f);
  for (ElementId i = 0; i < 4000; ++i) {
    // ~90% of inserts land in the hot cell, the rest spread out.
    const Vec3 c = (i % 10 != 0)
                       ? hot + Vec3(rng.Uniform(-2.0f, 2.0f),
                                    rng.Uniform(-2.0f, 2.0f),
                                    rng.Uniform(-2.0f, 2.0f))
                       : rng.PointIn(kUniverse);
    const Element e(i, AABB::FromCenterHalfExtent(c, 0.2f));
    g.Insert(e);
    mirror.push_back(e);
  }
  std::string err;
  ASSERT_TRUE(g.CheckInvariants(&err)) << err;
  EXPECT_GT(g.update_stats().relayouts, 0u);
  for (int q = 0; q < 20; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        rng.PointIn(kUniverse), rng.Uniform(0.5f, 8.0f));
    std::vector<ElementId> got;
    g.RangeQuery(query, &got);
    EXPECT_EQ(Sorted(got), Sorted(ScanRange(mirror, query))) << "q" << q;
  }
  std::vector<ElementId> knn;
  g.KnnQuery(hot, 9, &knn);
  EXPECT_EQ(knn, ScanKnn(mirror, hot, 9));
}

// Regression (churn cap): blocks below kMinEntriesForRelayout (4096) never
// hit the growth trigger, so relocation churn on a SMALL hot grid used to
// bloat the block to ~4096 slots while holding a few dozen live elements
// (dead + stranded slack bounded only by the constant, not the data). The
// churn cap re-layouts once relocation-abandoned dead slots outgrow a
// fixed multiple of the live count, regardless of absolute size (stranded
// geometric slack is itself bounded by a constant factor of dead, so
// capping dead bounds the total).
TEST(MemGridTest, ChurnCapBoundsSmallGridWaste) {
  Rng rng(88);
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 5.0f});
  // A small resident population so the bound has a live count to track.
  std::vector<Element> resident;
  for (ElementId i = 0; i < 16; ++i) {
    resident.emplace_back(i, AABB::FromCenterHalfExtent(
                                 rng.PointIn(kUniverse), 0.3f));
  }
  g.Build(resident);
  // Insert/erase cycles hammering one hot cell per cycle (a different cell
  // each cycle, so every burst churns a fresh zero-cap region through
  // geometric relocation and strands its capacity on erase).
  const ElementId kBurstBase = 1000;
  std::size_t max_waste = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    const Vec3 hot(2.5f + 5.0f * static_cast<float>(cycle % 19),
                   2.5f + 5.0f * static_cast<float>((cycle / 19) % 19),
                   2.5f);
    for (ElementId i = 0; i < 80; ++i) {
      g.Insert(Element(kBurstBase + i,
                       AABB::FromCenterHalfExtent(
                           hot + Vec3(rng.Uniform(-1.0f, 1.0f),
                                      rng.Uniform(-1.0f, 1.0f),
                                      rng.Uniform(-1.0f, 1.0f)),
                           0.2f)));
    }
    for (ElementId i = 0; i < 80; ++i) g.Erase(kBurstBase + i);
    const MemGridShape s = g.Shape();
    max_waste = std::max(max_waste, s.slack_slots + s.dead_slots);
  }
  // Pre-fix the waste marched to ~4096 slots (256x the live population);
  // the churn cap holds it to a small multiple of live + burst peak.
  EXPECT_LT(max_waste, 2048u);
  EXPECT_GT(g.update_stats().relayouts, 0u);
  std::string err;
  ASSERT_TRUE(g.CheckInvariants(&err)) << err;
  // The grid still answers exactly after all that churn.
  for (int q = 0; q < 10; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                  rng.Uniform(2.0f, 15.0f));
    std::vector<ElementId> got;
    g.RangeQuery(query, &got);
    EXPECT_EQ(Sorted(got), ScanRange(resident, query)) << "q" << q;
  }
}

// Regression for the churn cap's counter side: layout-policy slack
// (min_slack / slack_fraction) must NOT count as reclaimable waste. A
// padded config with min_slack=8 and ~1 element per cell carries 8x live
// in slack by design; a trigger that counted it would re-layout on every
// reservation forever (each re-layout recreates the identical slack) and
// collapse update throughput to O(n/shards) per migration.
TEST(MemGridTest, PaddedLayoutSlackIsNotChurnWaste) {
  Rng rng(89);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 2000; ++i) {
    elems.emplace_back(i, AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                     0.2f));
  }
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 4.0f, .min_slack = 8});
  g.Build(elems);
  for (int i = 0; i < 1000; ++i) {
    const ElementId id = rng.NextBelow(2000);
    ASSERT_TRUE(g.Update(id, AABB::FromCenterHalfExtent(
                                 rng.PointIn(kUniverse), 0.2f)));
  }
  // 1000 scattered migrations into 8-slot-slack regions abandon almost no
  // dead space — nowhere near the dead-slot churn cap.
  EXPECT_EQ(g.update_stats().relayouts, 0u);
  std::string err;
  ASSERT_TRUE(g.CheckInvariants(&err)) << err;
}

TEST(MemGridTest, SelfJoinWidensReachWhenCellsAreTooSmall) {
  // Regression: with cell_size < 2*max_half_extent + eps the old code only
  // asserted (debug) and silently dropped pairs in release builds. The
  // runtime fallback must widen the neighbourhood and stay complete.
  // 600 elements: the widened sweep would visit more cells than there are
  // elements, so the all-pairs fallback fires; 3000 elements: the widened
  // forward-neighbourhood sweep itself runs.
  for (const ElementId n : {600u, 3000u}) {
    Rng rng(85);
    std::vector<Element> elems;
    for (ElementId i = 0; i < n; ++i) {
      // Half-extents up to 3.0 vs cell size 2.0: matching centres can sit
      // several cells apart.
      elems.emplace_back(
          i, AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                        rng.Uniform(0.5f, 3.0f)));
    }
    MemGrid g(kUniverse, MemGridConfig{.cell_size = 2.0f});
    g.Build(elems);
    for (const float eps : {0.0f, 1.0f}) {
      std::vector<std::pair<ElementId, ElementId>> got;
      g.SelfJoin(eps, &got);
      SortPairs(&got);
      auto want = NestedLoopSelfJoin(elems, eps);
      SortPairs(&want);
      EXPECT_EQ(got, want) << "n=" << n << " eps=" << eps;
    }
  }
}

// Decomposition-vs-sort differential battery: RangeQuery / RangeQueryCount
// must be BIT-IDENTICAL (ids, emission order, counters) between the BIGMIN
// curve-range decomposition (RangeDecomp::kRuns) and the legacy
// radix-sorted rank gather (kSort) across layouts x shards x threads, on a
// pristine build, after relocation churn, and with an incremental
// compaction pass caught mid-flight — plus the degenerate probes (empty /
// inverted boxes, single cell, zero-volume planes, full universe, boxes
// clipped at the universe faces). Runs under the "determinism" ctest label,
// so it is also TSan workload.
TEST(MemGridTest, DecompositionMatchesSortBitIdentical) {
  const auto elems =
      GenerateClusteredBoxes(6000, kUniverse, 8, 6.0f, 0.05f, 0.6f);
  Rng rng(95);
  std::vector<AABB> probes;
  for (int q = 0; q < 10; ++q) {
    probes.push_back(AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                rng.Uniform(2.0f, 35.0f)));
  }
  probes.push_back(kUniverse);                                // Everything.
  probes.push_back(AABB(Vec3(20, 20, 20), Vec3(20, 20, 20))); // Point box.
  probes.push_back(AABB(Vec3(0, 0, 40), Vec3(100, 100, 40))); // z plane.
  probes.push_back(AABB(Vec3(55, 0, 0), Vec3(55, 100, 100))); // x plane.
  probes.push_back(AABB(Vec3(-50, -50, -50), Vec3(5, 150, 5)));  // Clipped.
  probes.push_back(AABB(Vec3(90, 90, 90), Vec3(160, 160, 160)));
  probes.push_back(AABB(Vec3(60, 10, 10), Vec3(40, 90, 90)));  // Inverted x.
  probes.push_back(AABB(Vec3(7, 7, 7), Vec3(3, 3, 3)));  // Fully inverted.
  probes.push_back(AABB());                              // Default empty.

  const auto compare = [&](const MemGrid& runs_grid, const MemGrid& sort_grid,
                           const std::vector<Element>& mirror,
                           const char* when) {
    for (std::size_t p = 0; p < probes.size(); ++p) {
      std::vector<ElementId> got_runs, got_sort;
      QueryCounters c_runs, c_sort;
      runs_grid.RangeQuery(probes[p], &got_runs, &c_runs);
      sort_grid.RangeQuery(probes[p], &got_sort, &c_sort);
      // Unsorted: the emission ORDER itself must match.
      ASSERT_EQ(got_runs, got_sort) << when << " probe " << p;
      ASSERT_EQ(c_runs.nodes_visited, c_sort.nodes_visited)
          << when << " probe " << p;
      ASSERT_EQ(c_runs.element_tests, c_sort.element_tests)
          << when << " probe " << p;
      ASSERT_EQ(c_runs.bytes_read, c_sort.bytes_read)
          << when << " probe " << p;
      ASSERT_EQ(Sorted(got_runs), Sorted(ScanRange(mirror, probes[p])))
          << when << " probe " << p;
      ASSERT_EQ(runs_grid.RangeQueryCount(probes[p]), got_runs.size())
          << when << " probe " << p;
      ASSERT_EQ(sort_grid.RangeQueryCount(probes[p]), got_sort.size())
          << when << " probe " << p;
    }
  };

  for (const CellLayout layout :
       {CellLayout::kRowMajor, CellLayout::kMorton, CellLayout::kHilbert}) {
    for (const std::uint32_t shards : {1u, 5u}) {
      for (const std::uint32_t threads : {0u, 2u}) {
        SCOPED_TRACE(::testing::Message()
                     << "layout=" << ToString(layout) << " shards=" << shards
                     << " threads=" << threads);
        MemGridConfig cfg;
        cfg.cell_size = 3.0f;
        cfg.layout = layout;
        cfg.shards = shards;
        cfg.threads = threads;
        cfg.compact_regions_per_batch = 2;  // Slow passes: easy to catch.
        cfg.decomp = RangeDecomp::kRuns;
        MemGrid runs_grid(kUniverse, cfg);
        cfg.decomp = RangeDecomp::kSort;
        MemGrid sort_grid(kUniverse, cfg);
        auto mirror = elems;
        runs_grid.Build(mirror);
        sort_grid.Build(mirror);
        compare(runs_grid, sort_grid, mirror, "pristine");

        // Drive identical churn into both grids until an incremental
        // compaction pass is caught in flight (decomp does not touch the
        // mutation paths, so the two storage states stay identical and
        // the comparison above stays exact — now straddling the fresh/old
        // block split).
        Rng churn(96);
        std::vector<ElementUpdate> batch;
        bool caught_mid_pass = false;
        for (int round = 0; round < 120 && !caught_mid_pass; ++round) {
          batch.clear();
          for (Element& e : mirror) {
            if (churn.NextFloat() < 0.3f) {
              e.box = AABB::FromCenterHalfExtent(churn.PointIn(kUniverse),
                                                 churn.Uniform(0.05f, 0.6f));
              batch.emplace_back(e.id, e.box);
            }
          }
          ASSERT_EQ(runs_grid.ApplyUpdates(batch), batch.size());
          ASSERT_EQ(sort_grid.ApplyUpdates(batch), batch.size());
          caught_mid_pass = runs_grid.Shape().compacting_shards > 0;
        }
        // The churn above reliably leaves a pass in flight within a couple
        // of rounds; assert it so the mid-compaction coverage cannot
        // silently erode.
        ASSERT_TRUE(caught_mid_pass);
        ASSERT_GT(sort_grid.Shape().compacting_shards, 0u);
        compare(runs_grid, sort_grid, mirror, "mid-compaction");
        std::string err;
        ASSERT_TRUE(runs_grid.CheckInvariants(&err)) << err;
        ASSERT_TRUE(sort_grid.CheckInvariants(&err)) << err;
      }
    }
  }
}

// SelfJoin's widened-reach sweep reuses the decomposition for the bulk
// forward box on the curve layouts: pair SETS and comparison counts must
// match the sort-mode sweep and brute force (emission order inside the
// bulk box legitimately differs — rank order vs coordinate order — so the
// comparison is on sorted pairs).
TEST(MemGridTest, SelfJoinDecompositionMatchesSortOnWidenedReach) {
  Rng rng(97);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 2500; ++i) {
    elems.emplace_back(i, AABB::FromCenterHalfExtent(
                              rng.PointIn(kUniverse),
                              rng.Uniform(0.5f, 3.0f)));
  }
  for (const CellLayout layout :
       {CellLayout::kRowMajor, CellLayout::kMorton, CellLayout::kHilbert}) {
    MemGridConfig cfg;
    cfg.cell_size = 2.0f;  // << 2*max_half_extent: the widened sweep runs.
    cfg.layout = layout;
    cfg.decomp = RangeDecomp::kRuns;
    MemGrid runs_grid(kUniverse, cfg);
    cfg.decomp = RangeDecomp::kSort;
    MemGrid sort_grid(kUniverse, cfg);
    runs_grid.Build(elems);
    sort_grid.Build(elems);
    for (const float eps : {0.0f, 0.8f}) {
      std::vector<std::pair<ElementId, ElementId>> got_runs, got_sort;
      QueryCounters c_runs, c_sort;
      runs_grid.SelfJoin(eps, &got_runs, &c_runs);
      sort_grid.SelfJoin(eps, &got_sort, &c_sort);
      EXPECT_EQ(c_runs.element_tests, c_sort.element_tests)
          << ToString(layout) << " eps=" << eps;
      SortPairs(&got_runs);
      SortPairs(&got_sort);
      ASSERT_EQ(got_runs, got_sort) << ToString(layout) << " eps=" << eps;
      auto want = NestedLoopSelfJoin(elems, eps);
      SortPairs(&want);
      ASSERT_EQ(got_runs, want) << ToString(layout) << " eps=" << eps;
    }
  }
}

// Mixed-workload differential battery: interleaved bulk-build / insert /
// erase / update / query phases with CheckInvariants after every phase —
// exactly the regime the slack-CSR layout must survive, run under both the
// default and the zero-slack ("tight", relocation-heavy) profiles.
class MemGridMixedWorkloadTest
    : public ::testing::TestWithParam<MemGridConfig> {};

TEST_P(MemGridMixedWorkloadTest, PhasesStayExactAndInvariant) {
  MemGrid g(kUniverse, GetParam());
  Rng rng(86);
  std::vector<Element> mirror;
  ElementId next = 0;

  const auto check_phase = [&](const char* phase) {
    std::string err;
    ASSERT_TRUE(g.CheckInvariants(&err)) << phase << ": " << err;
    ASSERT_EQ(g.size(), mirror.size()) << phase;
    for (int q = 0; q < 6; ++q) {
      const AABB query = AABB::FromCenterHalfExtent(
          rng.PointIn(kUniverse), rng.Uniform(1.0f, 10.0f));
      std::vector<ElementId> got;
      g.RangeQuery(query, &got);
      ASSERT_EQ(Sorted(got), Sorted(ScanRange(mirror, query)))
          << phase << " q" << q;
    }
    const Vec3 p = rng.PointIn(kUniverse);
    std::vector<ElementId> knn;
    g.KnnQuery(p, 6, &knn);
    ASSERT_EQ(knn, ScanKnn(mirror, p, 6)) << phase;
  };

  // Phase 1: bulk build.
  for (; next < 1200; ++next) {
    mirror.emplace_back(next, AABB::FromCenterHalfExtent(
                                  rng.PointIn(kUniverse),
                                  rng.Uniform(0.1f, 1.2f)));
  }
  g.Build(mirror);
  check_phase("build");

  // Phase 2: incremental inserts.
  for (int i = 0; i < 400; ++i, ++next) {
    const Element e(next, AABB::FromCenterHalfExtent(
                              rng.PointIn(kUniverse),
                              rng.Uniform(0.1f, 1.2f)));
    g.Insert(e);
    mirror.push_back(e);
  }
  check_phase("insert");

  // Phase 3: erases (including re-erase of gone ids).
  for (int i = 0; i < 300; ++i) {
    const std::size_t at = rng.NextBelow(mirror.size());
    ASSERT_TRUE(g.Erase(mirror[at].id));
    EXPECT_FALSE(g.Erase(mirror[at].id));
    mirror[at] = mirror.back();
    mirror.pop_back();
  }
  check_phase("erase");

  // Phase 4: single updates, mixing small nudges (in place) with jumps.
  for (int i = 0; i < 400; ++i) {
    auto& m = mirror[rng.NextBelow(mirror.size())];
    const Vec3 c = i % 2 == 0 ? m.Center() + Vec3(0.01f, 0.01f, 0.01f)
                              : rng.PointIn(kUniverse);
    m.box = AABB::FromCenterHalfExtent(c, rng.Uniform(0.1f, 1.2f));
    ASSERT_TRUE(g.Update(m.id, m.box));
  }
  check_phase("update");

  // Phase 5: batch updates (the ApplyUpdates migration-grouping path),
  // including a duplicate id inside one batch.
  std::vector<ElementUpdate> batch;
  for (auto& m : mirror) {
    m.box = AABB::FromCenterHalfExtent(
        rng.NextFloat() < 0.3f ? rng.PointIn(kUniverse)
                               : m.Center() + Vec3(0.02f, 0, 0),
        rng.Uniform(0.1f, 1.2f));
    batch.emplace_back(m.id, m.box);
  }
  mirror.front().box = AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                  0.5f);
  batch.emplace_back(mirror.front().id, mirror.front().box);
  batch.emplace_back(kInvalidElement, batch.front().new_box);  // Unknown id.
  EXPECT_EQ(g.ApplyUpdates(batch), batch.size() - 1);
  check_phase("batch-update");

  // Phase 6: rebuild on top of the mutated state.
  g.Build(mirror);
  check_phase("rebuild");
}

INSTANTIATE_TEST_SUITE_P(
    SlackProfiles, MemGridMixedWorkloadTest,
    ::testing::Values(
        MemGridConfig{.cell_size = 4.0f},
        MemGridConfig{.cell_size = 4.0f, .min_slack = 2,
                      .slack_fraction = 0.25f}),
    [](const ::testing::TestParamInfo<MemGridConfig>& info) {
      return info.param.min_slack == 0 ? "compact" : "padded";
    });

TEST(MemGridTest, RebuildIsCheaperThanPerElementWork) {
  // Build must be a small constant per element (O(n) scatter); this is a
  // sanity guard, not a benchmark.
  const auto elems = GenerateUniformBoxes(200000, kUniverse, 0.05f, 0.3f);
  MemGrid g(kUniverse, MemGridConfig{.cell_size = 2.0f});
  Stopwatch sw;
  g.Build(elems);
  EXPECT_LT(sw.ElapsedSeconds(), 2.0);
  EXPECT_EQ(g.size(), elems.size());
}

// --- Registry-wide differential battery ----------------------------------

struct RegistryCase {
  std::string index;
  int dataset;  // 0 uniform, 1 clustered, 2 neurons.
};

std::vector<Element> MakeDataset(int dataset, std::size_t n) {
  switch (dataset) {
    case 0:
      return GenerateUniformBoxes(n, kUniverse, 0.05f, 1.0f);
    case 1:
      return GenerateClusteredBoxes(n, kUniverse, 10, 5.0f, 0.05f, 0.8f);
    default:
      return datagen::GenerateNeuronsWithSize(n).elements;
  }
}

class RegistryDifferentialTest
    : public ::testing::TestWithParam<RegistryCase> {};

TEST_P(RegistryDifferentialTest, RangeAndKnnAgainstBruteForce) {
  const RegistryCase& c = GetParam();
  auto index = MakeIndex(c.index);
  ASSERT_NE(index, nullptr) << c.index;
  const auto elems = MakeDataset(c.dataset, 3000);
  const AABB universe =
      c.dataset == 2 ? AABB(Vec3(0, 0, 0), Vec3(285, 285, 285)) : kUniverse;
  index->Build(elems, universe);
  EXPECT_EQ(index->size(), elems.size());

  Rng rng(91);
  const AABB bounds = BoundsOf(elems);
  if (index->SupportsRangeQueries()) {
    for (int q = 0; q < 25; ++q) {
      const AABB query = AABB::FromCenterHalfExtent(
          rng.PointIn(bounds), rng.Uniform(0.5f, 15.0f));
      std::vector<ElementId> got;
      index->RangeQuery(query, &got);
      ASSERT_EQ(Sorted(got), ScanRange(elems, query))
          << c.index << " q" << q;
    }
  }
  for (int q = 0; q < 12; ++q) {
    const Vec3 p = rng.PointIn(bounds);
    std::vector<ElementId> got;
    index->KnnQuery(p, 8, &got);
    const auto want = ScanKnn(elems, p, 8);
    if (index->KnnIsExact()) {
      ASSERT_EQ(got, want) << c.index << " q" << q;
    } else {
      // Approximate contract: no garbage ids, sane size.
      EXPECT_LE(got.size(), 8u);
      for (const ElementId id : got) EXPECT_LT(id, elems.size());
    }
  }
}

TEST_P(RegistryDifferentialTest, UpdatesKeepExactness) {
  const RegistryCase& c = GetParam();
  auto index = MakeIndex(c.index);
  ASSERT_NE(index, nullptr);
  if (!index->SupportsUpdates() || !index->SupportsRangeQueries()) {
    GTEST_SKIP() << c.index << " is static or kNN-only";
  }
  auto elems = MakeDataset(c.dataset, 2000);
  const AABB universe =
      c.dataset == 2 ? AABB(Vec3(0, 0, 0), Vec3(285, 285, 285)) : kUniverse;
  index->Build(elems, universe);

  Rng rng(92);
  std::vector<ElementUpdate> updates;
  for (int round = 0; round < 3; ++round) {
    updates.clear();
    for (Element& e : elems) {
      e.box = e.box.Translated(Vec3(rng.Normal(0, 0.3f),
                                    rng.Normal(0, 0.3f),
                                    rng.Normal(0, 0.3f)));
      updates.emplace_back(e.id, e.box);
    }
    EXPECT_EQ(index->ApplyUpdates(updates), updates.size()) << c.index;
    for (int q = 0; q < 8; ++q) {
      const AABB query = AABB::FromCenterHalfExtent(
          rng.PointIn(BoundsOf(elems)), rng.Uniform(1.0f, 10.0f));
      std::vector<ElementId> got;
      index->RangeQuery(query, &got);
      ASSERT_EQ(Sorted(got), Sorted(ScanRange(elems, query)))
          << c.index << " round " << round;
    }
  }
}

std::vector<RegistryCase> AllCases() {
  std::vector<RegistryCase> cases;
  for (const std::string& name : AllIndexNames()) {
    for (int ds = 0; ds < 3; ++ds) {
      cases.push_back({name, ds});
    }
  }
  return cases;
}

std::string RegistryCaseName(
    const ::testing::TestParamInfo<RegistryCase>& info) {
  static const char* kDatasets[] = {"uniform", "clustered", "neurons"};
  std::string n = info.param.index + "_" + kDatasets[info.param.dataset];
  std::replace(n.begin(), n.end(), '-', '_');
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, RegistryDifferentialTest,
                         ::testing::ValuesIn(AllCases()), RegistryCaseName);

// Seeded mixed-workload differential fuzz: ONE op stream (bulk build,
// jitter batches, teleport batches with a duplicate and an unknown id,
// rebuild on the mutated state) driven through several registry profiles
// side by side. After every phase each profile must satisfy its structural
// invariants (SpatialIndex::CheckInvariants — real for the MemGrid
// profiles) and agree query-for-query with the brute-force mirror, which
// transitively cross-checks the profiles against each other.
TEST(RegistryTest, SeededMixedWorkloadDifferentialFuzz) {
  const std::vector<std::string> profiles = {
      "memgrid",          "memgrid-padded",
      "memgrid-morton",   "memgrid-hilbert",
      "memgrid-sharded",  "memgrid-sortscan",
      "rtree",            "rtree-packed-str",
      "rtree-packed-hilbert", "linear-scan"};
  std::vector<std::unique_ptr<SpatialIndex>> indexes;
  for (const std::string& p : profiles) {
    auto index = MakeIndex(p);
    ASSERT_NE(index, nullptr) << p;
    ASSERT_TRUE(index->SupportsUpdates()) << p;
    indexes.push_back(std::move(index));
  }

  Rng rng(123);
  std::vector<Element> mirror = MakeDataset(1, 2500);  // Clustered.
  const auto check_phase = [&](const char* phase) {
    for (std::size_t i = 0; i < indexes.size(); ++i) {
      std::string err;
      ASSERT_TRUE(indexes[i]->CheckInvariants(&err))
          << profiles[i] << " after " << phase << ": " << err;
      ASSERT_EQ(indexes[i]->size(), mirror.size())
          << profiles[i] << " after " << phase;
    }
    for (int q = 0; q < 8; ++q) {
      const AABB query = AABB::FromCenterHalfExtent(
          rng.PointIn(kUniverse), rng.Uniform(1.0f, 10.0f));
      const auto want = Sorted(ScanRange(mirror, query));
      for (std::size_t i = 0; i < indexes.size(); ++i) {
        std::vector<ElementId> got;
        indexes[i]->RangeQuery(query, &got);
        ASSERT_EQ(Sorted(got), want)
            << profiles[i] << " after " << phase << " q" << q;
      }
    }
    const Vec3 p = rng.PointIn(kUniverse);
    const auto want_knn = ScanKnn(mirror, p, 7);
    for (std::size_t i = 0; i < indexes.size(); ++i) {
      std::vector<ElementId> got;
      indexes[i]->KnnQuery(p, 7, &got);
      ASSERT_EQ(got, want_knn) << profiles[i] << " after " << phase;
    }
  };

  for (auto& index : indexes) index->Build(mirror, kUniverse);
  check_phase("build");

  std::vector<ElementUpdate> batch;
  for (int round = 0; round < 3; ++round) {
    // Jitter phase: everything moves a little (the §4.3 regime).
    batch.clear();
    for (Element& e : mirror) {
      e.box = e.box.Translated(Vec3(rng.Normal(0, 0.2f), rng.Normal(0, 0.2f),
                                    rng.Normal(0, 0.2f)));
      batch.emplace_back(e.id, e.box);
    }
    for (std::size_t i = 0; i < indexes.size(); ++i) {
      ASSERT_EQ(indexes[i]->ApplyUpdates(batch), batch.size())
          << profiles[i] << " jitter round " << round;
    }
    check_phase("jitter");

    // Teleport phase: ~20% long-distance moves, plus a duplicate id (every
    // profile applies both, last write wins) and an unknown id (skipped).
    batch.clear();
    for (Element& e : mirror) {
      if (rng.NextFloat() < 0.2f) {
        e.box = AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                           rng.Uniform(0.1f, 0.8f));
        batch.emplace_back(e.id, e.box);
      }
    }
    if (!mirror.empty()) {
      Element& dup = mirror[mirror.size() / 3];
      dup.box = AABB::FromCenterHalfExtent(rng.PointIn(kUniverse), 0.3f);
      batch.emplace_back(dup.id, dup.box);
    }
    const std::size_t valid = batch.size();
    batch.emplace_back(kInvalidElement,
                       AABB::FromCenterHalfExtent(Vec3(1, 1, 1), 0.1f));
    for (std::size_t i = 0; i < indexes.size(); ++i) {
      ASSERT_EQ(indexes[i]->ApplyUpdates(batch), valid)
          << profiles[i] << " teleport round " << round;
    }
    check_phase("teleport");
  }

  // Rebuild on the mutated state: Build must discard everything stale.
  for (auto& index : indexes) index->Build(mirror, kUniverse);
  check_phase("rebuild");
}

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeIndex("no-such-index"), nullptr);
}

TEST(RegistryTest, AllNamesConstructible) {
  for (const std::string& name : AllIndexNames()) {
    EXPECT_NE(MakeIndex(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace simspatial::core
