// Registry-wide edge-case battery: every index must survive and stay exact
// on degenerate inputs — empty datasets, one element, all-identical boxes,
// zero-extent (point) elements, elements on universe walls, and queries
// that are points or cover everything.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/bruteforce.h"
#include "common/rng.h"
#include "core/spatial_index.h"
#include "join/spatial_join.h"

namespace simspatial::core {
namespace {

const AABB kUniverse(Vec3(0, 0, 0), Vec3(10, 10, 10));

std::vector<ElementId> Sorted(std::vector<ElementId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

void ExpectRangeMatches(SpatialIndex* index,
                        const std::vector<Element>& elems, const AABB& q,
                        const char* what) {
  if (!index->SupportsRangeQueries()) return;
  std::vector<ElementId> got;
  index->RangeQuery(q, &got);
  EXPECT_EQ(Sorted(got), Sorted(ScanRange(elems, q)))
      << index->name() << ": " << what;
}

class EdgeCaseTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EdgeCaseTest, EmptyDataset) {
  auto index = MakeIndex(GetParam());
  index->Build({}, kUniverse);
  EXPECT_EQ(index->size(), 0u);
  std::vector<ElementId> out;
  if (index->SupportsRangeQueries()) {
    index->RangeQuery(kUniverse, &out);
    EXPECT_TRUE(out.empty()) << index->name();
  }
  index->KnnQuery(Vec3(5, 5, 5), 3, &out);
  EXPECT_TRUE(out.empty()) << index->name();
}

TEST_P(EdgeCaseTest, SingleElement) {
  auto index = MakeIndex(GetParam());
  const std::vector<Element> elems{
      Element(7, AABB(Vec3(3, 3, 3), Vec3(4, 4, 4)))};
  index->Build(elems, kUniverse);
  ExpectRangeMatches(index.get(), elems, kUniverse, "whole universe");
  ExpectRangeMatches(index.get(), elems, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                     "miss");
  std::vector<ElementId> out;
  index->KnnQuery(Vec3(0, 0, 0), 1, &out);
  if (index->KnnIsExact()) {
    ASSERT_EQ(out.size(), 1u) << index->name();
    EXPECT_EQ(out[0], 7u);
  }
}

TEST_P(EdgeCaseTest, AllIdenticalBoxes) {
  auto index = MakeIndex(GetParam());
  std::vector<Element> elems;
  for (ElementId i = 0; i < 500; ++i) {
    elems.emplace_back(i, AABB(Vec3(4, 4, 4), Vec3(5, 5, 5)));
  }
  index->Build(elems, kUniverse);
  ExpectRangeMatches(index.get(), elems,
                     AABB(Vec3(4.5f, 4.5f, 4.5f), Vec3(6, 6, 6)), "overlap");
  ExpectRangeMatches(index.get(), elems, AABB(Vec3(6, 6, 6), Vec3(7, 7, 7)),
                     "miss");
}

TEST_P(EdgeCaseTest, ZeroExtentPointElements) {
  auto index = MakeIndex(GetParam());
  Rng rng(7);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 800; ++i) {
    elems.emplace_back(i, AABB::FromPoint(rng.PointIn(kUniverse)));
  }
  index->Build(elems, kUniverse);
  Rng qrng(8);
  for (int q = 0; q < 10; ++q) {
    ExpectRangeMatches(
        index.get(), elems,
        AABB::FromCenterHalfExtent(qrng.PointIn(kUniverse), 2.0f), "points");
  }
  if (index->KnnIsExact()) {
    std::vector<ElementId> got;
    const Vec3 p = qrng.PointIn(kUniverse);
    index->KnnQuery(p, 5, &got);
    EXPECT_EQ(got, ScanKnn(elems, p, 5)) << index->name();
  }
}

TEST_P(EdgeCaseTest, ElementsOnUniverseWalls) {
  auto index = MakeIndex(GetParam());
  std::vector<Element> elems;
  ElementId id = 0;
  // Corners, edges, faces — including boxes protruding past the walls.
  for (const float x : {0.0f, 10.0f}) {
    for (const float y : {0.0f, 10.0f}) {
      for (const float z : {0.0f, 10.0f}) {
        elems.emplace_back(
            id++, AABB::FromCenterHalfExtent(Vec3(x, y, z), 0.5f));
      }
    }
  }
  index->Build(elems, kUniverse);
  ExpectRangeMatches(index.get(), elems, kUniverse.Inflated(1.0f), "all");
  ExpectRangeMatches(index.get(), elems,
                     AABB(Vec3(-0.6f, -0.6f, -0.6f), Vec3(0.4f, 0.4f, 0.4f)),
                     "low corner");
  ExpectRangeMatches(index.get(), elems,
                     AABB(Vec3(9.6f, 9.6f, 9.6f),
                          Vec3(10.6f, 10.6f, 10.6f)),
                     "high corner");
}

TEST_P(EdgeCaseTest, PointQuery) {
  auto index = MakeIndex(GetParam());
  std::vector<Element> elems{
      Element(0, AABB(Vec3(2, 2, 2), Vec3(4, 4, 4))),
      Element(1, AABB(Vec3(3, 3, 3), Vec3(5, 5, 5))),
      Element(2, AABB(Vec3(8, 8, 8), Vec3(9, 9, 9)))};
  index->Build(elems, kUniverse);
  // A zero-volume query at a point covered by two boxes.
  ExpectRangeMatches(index.get(), elems,
                     AABB::FromPoint(Vec3(3.5f, 3.5f, 3.5f)), "point query");
  // On a shared boundary (closed-box semantics).
  ExpectRangeMatches(index.get(), elems, AABB::FromPoint(Vec3(4, 4, 4)),
                     "boundary point");
}

// Degenerate query boxes: zero-volume boxes (lo == hi on one or more axes)
// are legitimate plane/line/point probes under the library's closed-box
// semantics — elements touching the plane must be reported. Inverted boxes
// (min > max on some axis) usually intersect nothing — but the pairwise
// closed-box Intersects can still accept an element that SPANS the whole
// inversion gap (e.min <= q.max && q.min <= e.max holds per axis), so
// "inverted" does not simply mean "empty result" (second test below).
// The brute-force ScanRange IS the normative behaviour throughout; every
// profile must agree with it (no crash, no clamped re-interpretation),
// and RangeQueryCount must agree with RangeQuery.
TEST_P(EdgeCaseTest, ZeroVolumeAndInvertedQueryBoxes) {
  auto index = MakeIndex(GetParam());
  Rng rng(57);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 200; ++i) {
    // Half the elements sit exactly ON the z=5 / x=5 planes the probes use.
    Vec3 c = rng.PointIn(kUniverse);
    if (i % 4 == 0) c.z = 5.0f;
    if (i % 4 == 1) c.x = 5.0f;
    elems.emplace_back(i, AABB::FromCenterHalfExtent(c, i % 2 == 0 ? 0.0f
                                                                   : 0.4f));
  }
  index->Build(elems, kUniverse);

  const AABB degenerate[] = {
      AABB(Vec3(0, 0, 5), Vec3(10, 10, 5)),    // z plane (zero volume).
      AABB(Vec3(5, 0, 0), Vec3(5, 10, 10)),    // x plane.
      AABB(Vec3(5, 5, 0), Vec3(5, 5, 10)),     // Line.
      AABB(Vec3(5, 5, 5), Vec3(5, 5, 5)),      // Point.
      AABB(Vec3(0, 0, -3), Vec3(10, 10, -3)),  // Plane outside the universe.
      AABB(Vec3(7, 1, 1), Vec3(3, 9, 9)),      // Inverted on x.
      AABB(Vec3(1, 1, 9), Vec3(9, 9, 1)),      // Inverted on z.
      AABB(Vec3(8, 8, 8), Vec3(2, 2, 2)),      // Inverted on all axes.
      AABB(),                                  // Default-constructed empty.
  };
  const char* const what[] = {"z plane", "x plane",    "line",
                              "point",   "outside",    "inverted x",
                              "inverted z", "inverted all", "empty"};
  for (std::size_t i = 0; i < std::size(degenerate); ++i) {
    ExpectRangeMatches(index.get(), elems, degenerate[i], what[i]);
    if (index->SupportsRangeQueries()) {
      std::vector<ElementId> got;
      index->RangeQuery(degenerate[i], &got);
      EXPECT_EQ(index->RangeQueryCount(degenerate[i]), got.size())
          << index->name() << ": " << what[i];
    }
  }
}

// The inverted-box subtlety above, pinned: an element spanning the
// inversion gap DOES intersect an inverted box under the closed-box
// pairwise semantics, and every profile must report it exactly like the
// brute-force oracle (a regression here once hid behind small test
// elements — the early-out that proves emptiness must come from the gap
// exceeding twice the largest half-extent, not from the inversion alone).
TEST_P(EdgeCaseTest, InvertedBoxStillMatchesGapSpanningElements) {
  auto index = MakeIndex(GetParam());
  std::vector<Element> elems;
  // One element covering the whole universe (spans any inversion gap
  // inside it), plus small ones that must never match inverted probes.
  elems.emplace_back(0, AABB(Vec3(0, 0, 0), Vec3(10, 10, 10)));
  elems.emplace_back(1, AABB::FromCenterHalfExtent(Vec3(2, 2, 2), 0.3f));
  elems.emplace_back(2, AABB::FromCenterHalfExtent(Vec3(8, 5, 3), 0.3f));
  index->Build(elems, kUniverse);
  const AABB inverted[] = {
      AABB(Vec3(6, 1, 1), Vec3(4, 9, 9)),  // Inverted on x: gap spanned.
      AABB(Vec3(1, 1, 9), Vec3(9, 9, 1)),  // Inverted on z.
      AABB(Vec3(7, 7, 7), Vec3(3, 3, 3)),  // Inverted on all axes.
  };
  for (std::size_t i = 0; i < std::size(inverted); ++i) {
    // The oracle reports the spanning element (and only it).
    ASSERT_EQ(ScanRange(elems, inverted[i]),
              (std::vector<ElementId>{0}));
    ExpectRangeMatches(index.get(), elems, inverted[i], "gap-spanning");
    if (index->SupportsRangeQueries()) {
      EXPECT_EQ(index->RangeQueryCount(inverted[i]), 1u)
          << index->name() << ": probe " << i;
    }
  }
}

TEST_P(EdgeCaseTest, DuplicateHeavyKnn) {
  auto index = MakeIndex(GetParam());
  if (!index->KnnIsExact()) GTEST_SKIP();
  // Many elements at identical distance: tie-breaking must match the
  // reference exactly (by id).
  std::vector<Element> elems;
  for (ElementId i = 0; i < 100; ++i) {
    elems.emplace_back(i, AABB(Vec3(4, 4, 4), Vec3(5, 5, 5)));
  }
  index->Build(elems, kUniverse);
  std::vector<ElementId> got;
  index->KnnQuery(Vec3(0, 0, 0), 10, &got);
  EXPECT_EQ(got, ScanKnn(elems, Vec3(0, 0, 0), 10)) << index->name();
}

// Batch entry points under degenerate probes: every registry profile —
// native batch scheduler (memgrid family) or the default per-probe loop —
// must produce, for a batch mixing planes/lines/points, gap-spanning
// inverted boxes, out-of-universe probes and exact duplicates, slot-for-slot
// exactly what the single-probe calls produce (same ids, same order), with
// RangeQueryCount agreeing per probe. Approximate structures (LSH) are
// held to batch-vs-single consistency rather than oracle equality.
TEST_P(EdgeCaseTest, BatchedDegenerateProbesMatchSingleProbeCalls) {
  auto index = MakeIndex(GetParam());
  Rng rng(61);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 300; ++i) {
    Vec3 c = rng.PointIn(kUniverse);
    if (i % 4 == 0) c.z = 5.0f;  // Mass on the z=5 plane probe below.
    elems.emplace_back(i, AABB::FromCenterHalfExtent(c, i % 2 == 0 ? 0.0f
                                                                   : 0.4f));
  }
  index->Build(elems, kUniverse);

  std::vector<AABB> probes = {
      AABB(Vec3(0, 0, 5), Vec3(10, 10, 5)),    // z plane (zero volume).
      AABB(Vec3(5, 5, 0), Vec3(5, 5, 10)),     // Line.
      AABB(Vec3(5, 5, 5), Vec3(5, 5, 5)),      // Point.
      AABB(Vec3(0, 0, -3), Vec3(10, 10, -3)),  // Outside the universe.
      AABB(Vec3(7, 1, 1), Vec3(3, 9, 9)),      // Inverted on x.
      AABB(Vec3(8, 8, 8), Vec3(2, 2, 2)),      // Inverted on all axes.
      AABB(),                                  // Default-constructed empty.
  };
  for (int i = 0; i < 12; ++i) {
    probes.push_back(AABB::FromCenterHalfExtent(rng.PointIn(kUniverse),
                                                rng.Uniform(0.2f, 4.0f)));
  }
  probes.push_back(probes[0]);  // Exact duplicates, scattered.
  probes.push_back(probes[9]);
  probes.push_back(probes[9]);

  std::vector<std::vector<ElementId>> slots;
  index->RangeQueryBatch(probes, &slots);
  ASSERT_EQ(slots.size(), probes.size()) << index->name();
  for (std::size_t i = 0; i < probes.size(); ++i) {
    std::vector<ElementId> single;
    index->RangeQuery(probes[i], &single);
    ASSERT_EQ(slots[i], single) << index->name() << ": slot " << i;
    if (index->SupportsRangeQueries()) {
      EXPECT_EQ(index->RangeQueryCount(probes[i]), slots[i].size())
          << index->name() << ": slot " << i;
      EXPECT_EQ(Sorted(slots[i]), Sorted(ScanRange(elems, probes[i])))
          << index->name() << ": slot " << i;
    }
  }

  // Counting batch over the same degenerate probes: per-slot counts must
  // equal the materializing slots and the return value their sum.
  std::vector<std::size_t> counts;
  const std::size_t total = index->RangeQueryCountBatch(probes, &counts);
  ASSERT_EQ(counts.size(), probes.size()) << index->name();
  std::size_t want_total = 0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(counts[i], slots[i].size())
        << index->name() << ": count slot " << i;
    want_total += counts[i];
  }
  EXPECT_EQ(total, want_total) << index->name();

  // kNN batch with k >= n (every element is a neighbour), duplicates and
  // out-of-universe points included.
  std::vector<Vec3> points = {Vec3(5, 5, 5), Vec3(-4, 5, 20), Vec3(0, 0, 0)};
  points.push_back(points[0]);
  for (int i = 0; i < 6; ++i) points.push_back(rng.PointIn(kUniverse));
  for (const std::size_t k : {std::size_t{3}, elems.size() + 10}) {
    std::vector<std::vector<ElementId>> knn_slots;
    index->KnnQueryBatch(points, k, &knn_slots);
    ASSERT_EQ(knn_slots.size(), points.size()) << index->name();
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::vector<ElementId> single;
      index->KnnQuery(points[i], k, &single);
      ASSERT_EQ(knn_slots[i], single)
          << index->name() << ": k=" << k << " slot " << i;
      if (index->KnnIsExact()) {
        EXPECT_EQ(knn_slots[i], ScanKnn(elems, points[i], k))
            << index->name() << ": k=" << k << " slot " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, EdgeCaseTest,
                         ::testing::ValuesIn(AllIndexNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

// Join edge cases (algorithms are free functions, not in the registry).
TEST(JoinEdgeCaseTest, IdenticalBoxesSelfJoin) {
  std::vector<Element> elems;
  for (ElementId i = 0; i < 40; ++i) {
    elems.emplace_back(i, AABB(Vec3(1, 1, 1), Vec3(2, 2, 2)));
  }
  const std::size_t expected = 40 * 39 / 2;
  auto check = [&](std::vector<join::JoinPair> pairs, const char* name) {
    SortPairs(&pairs);
    EXPECT_EQ(pairs.size(), expected) << name;
  };
  check(join::PlaneSweepSelfJoin(elems, 0.0f), "sweep");
  check(join::PbsmSelfJoin(elems, 0.0f), "pbsm");
  check(join::TouchSelfJoin(elems, 0.0f), "touch");
  check(join::GridSelfJoin(elems, 0.0f), "grid");
}

TEST(JoinEdgeCaseTest, ZeroExtentElementsWithEps) {
  Rng rng(9);
  std::vector<Element> elems;
  for (ElementId i = 0; i < 300; ++i) {
    elems.emplace_back(i, AABB::FromPoint(rng.PointIn(kUniverse)));
  }
  auto want = NestedLoopSelfJoin(elems, 0.7f);
  SortPairs(&want);
  for (auto [name, pairs] :
       {std::pair{"sweep", join::PlaneSweepSelfJoin(elems, 0.7f)},
        std::pair{"pbsm", join::PbsmSelfJoin(elems, 0.7f)},
        std::pair{"touch", join::TouchSelfJoin(elems, 0.7f)},
        std::pair{"grid", join::GridSelfJoin(elems, 0.7f)}}) {
    SortPairs(&pairs);
    EXPECT_EQ(pairs, want) << name;
  }
}

}  // namespace
}  // namespace simspatial::core
