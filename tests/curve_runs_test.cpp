// Property-based fuzz for CurveRangeRuns, the BIGMIN-style curve-range
// decomposition: for random lattice boxes across bits 1..10 and all three
// layouts, the emitted key runs must be sorted, pairwise disjoint,
// non-empty, MAXIMAL (the key just past a run decodes to a cell outside
// the box — adjacent runs cannot be fused), and their union must equal the
// brute-force key set of the cells inside the box. This is the codec-level
// ground truth the MemGrid decomposition-vs-sort differential battery
// (core_test) builds on.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "core/cell_layout.h"

namespace simspatial::core {
namespace {

constexpr CellLayout kLayouts[] = {CellLayout::kRowMajor, CellLayout::kMorton,
                                   CellLayout::kHilbert};

std::uint32_t Below(Rng& rng, std::uint32_t n) {
  return static_cast<std::uint32_t>(rng.NextBelow(n));
}

std::uint64_t KeyOf(CellLayout layout, std::uint32_t x, std::uint32_t y,
                    std::uint32_t z, const CellVec& dims, int bits) {
  switch (layout) {
    case CellLayout::kRowMajor:
      return (static_cast<std::uint64_t>(x) * dims[1] + y) * dims[2] + z;
    case CellLayout::kMorton:
      return MortonEncodeCell(x, y, z);
    case CellLayout::kHilbert:
      return HilbertEncodeCell(x, y, z, bits);
  }
  return 0;
}

bool DecodesIntoBox(CellLayout layout, std::uint64_t key, const CellVec& lo,
                    const CellVec& hi, const CellVec& dims, int bits) {
  std::uint32_t x = 0, y = 0, z = 0;
  switch (layout) {
    case CellLayout::kRowMajor:
      x = static_cast<std::uint32_t>(key / (dims[1] * dims[2]));
      y = static_cast<std::uint32_t>((key / dims[2]) % dims[1]);
      z = static_cast<std::uint32_t>(key % dims[2]);
      break;
    case CellLayout::kMorton:
      MortonDecodeCell(key, &x, &y, &z);
      break;
    case CellLayout::kHilbert:
      HilbertDecodeCell(key, bits, &x, &y, &z);
      break;
  }
  return x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] && z >= lo[2] &&
         z <= hi[2];
}

/// Check every CurveRangeRuns contract for one (layout, box) instance.
void CheckDecomposition(CellLayout layout, const CellVec& lo,
                        const CellVec& hi, const CellVec& dims, int bits) {
  SCOPED_TRACE(::testing::Message()
               << ToString(layout) << " bits=" << bits << " box=[" << lo[0]
               << "," << lo[1] << "," << lo[2] << "]..[" << hi[0] << ","
               << hi[1] << "," << hi[2] << "] dims=" << dims[0] << "x"
               << dims[1] << "x" << dims[2]);
  std::vector<CurveRun> runs;
  CurveRangeRuns(layout, lo, hi, dims, bits, &runs);

  // Sorted, disjoint, non-empty; adjacent runs separated by >= 1 key.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    ASSERT_LT(runs[i].begin, runs[i].end) << "empty run " << i;
    if (i > 0) {
      ASSERT_LT(runs[i - 1].end, runs[i].begin)
          << "runs " << i - 1 << "/" << i << " out of order or fusable";
    }
  }

  // Union == brute-force key set of the box's cells.
  std::vector<std::uint64_t> want;
  for (std::uint32_t x = lo[0]; x <= hi[0]; ++x) {
    for (std::uint32_t y = lo[1]; y <= hi[1]; ++y) {
      for (std::uint32_t z = lo[2]; z <= hi[2]; ++z) {
        want.push_back(KeyOf(layout, x, y, z, dims, bits));
      }
    }
  }
  std::sort(want.begin(), want.end());
  std::vector<std::uint64_t> got;
  got.reserve(want.size());
  for (const CurveRun& r : runs) {
    for (std::uint64_t k = r.begin; k < r.end; ++k) got.push_back(k);
  }
  ASSERT_EQ(got, want);

  // Maximality: the key just past each run (and just before it) belongs to
  // a cell OUTSIDE the box, otherwise the run could have been extended.
  // (Union-exactness above already implies it for in-lattice keys; this
  // pins the boundary cells explicitly, including the out-of-lattice gap
  // keys of the curve layouts.)
  const std::uint64_t universe_keys =
      layout == CellLayout::kRowMajor
          ? std::uint64_t{dims[0]} * dims[1] * dims[2]
          : std::uint64_t{1} << (3 * bits);
  for (const CurveRun& r : runs) {
    if (r.end < universe_keys) {
      EXPECT_FALSE(DecodesIntoBox(layout, r.end, lo, hi, dims, bits))
          << "run ending at " << r.end << " is extendable";
    }
    if (r.begin > 0) {
      EXPECT_FALSE(DecodesIntoBox(layout, r.begin - 1, lo, hi, dims, bits))
          << "run starting at " << r.begin << " is extendable backwards";
    }
  }
}

TEST(CurveRunsTest, FullUniverseIsOneRun) {
  // The whole lattice collapses to a single run for every layout (the
  // curve layouts on a power-of-two cube, rowmajor on any dims).
  for (const CellLayout layout : kLayouts) {
    for (const int bits : {1, 2, 3, 4}) {
      const auto n = static_cast<std::uint32_t>(1u << bits);
      const CellVec dims{n, n, n};
      std::vector<CurveRun> runs;
      CurveRangeRuns(layout, CellVec{0, 0, 0}, CellVec{n - 1, n - 1, n - 1},
                     dims, bits, &runs);
      ASSERT_EQ(runs.size(), 1u) << ToString(layout) << " bits=" << bits;
      EXPECT_EQ(runs[0].begin, 0u);
      EXPECT_EQ(runs[0].end, std::uint64_t{n} * n * n);
    }
  }
}

TEST(CurveRunsTest, SingleCellBoxes) {
  Rng rng(311);
  for (const CellLayout layout : kLayouts) {
    for (int bits = 1; bits <= 10; ++bits) {
      const std::uint32_t n = 1u << bits;
      for (int i = 0; i < 8; ++i) {
        const CellVec c{Below(rng, n), Below(rng, n), Below(rng, n)};
        CheckDecomposition(layout, c, c, CellVec{n, n, n}, bits);
      }
    }
  }
}

TEST(CurveRunsTest, RandomBoxesAcrossBitsAndLayouts) {
  Rng rng(312);
  for (const CellLayout layout : kLayouts) {
    for (int bits = 1; bits <= 10; ++bits) {
      const std::uint32_t n = 1u << bits;
      // Brute force enumerates the box, so cap each axis span; spans up to
      // 17 cells cross plenty of block boundaries at every refinement
      // level while keeping the whole fuzz sub-second.
      const std::uint32_t max_span = std::min(n, 17u);
      for (int i = 0; i < 10; ++i) {
        CellVec lo, hi;
        for (int a = 0; a < 3; ++a) {
          const std::uint32_t span = 1 + Below(rng, max_span);
          lo[a] = Below(rng, n - std::min(n - 1, span - 1));
          hi[a] = std::min(n - 1, lo[a] + span - 1);
        }
        CheckDecomposition(layout, lo, hi, CellVec{n, n, n}, bits);
      }
    }
  }
}

TEST(CurveRunsTest, BoxesClippedAtUniverseFaces) {
  // Boxes flush with the lattice faces (including full-depth slabs): the
  // regime MemGrid's probe clamping produces, and where the curve blocks
  // straddle the box on one side only.
  Rng rng(313);
  for (const CellLayout layout : kLayouts) {
    for (const int bits : {2, 3, 5, 8}) {
      const std::uint32_t n = 1u << bits;
      for (int face = 0; face < 6; ++face) {
        CellVec lo{0, 0, 0};
        CellVec hi{n - 1, n - 1, n - 1};
        const int axis = face / 2;
        if (face % 2 == 0) {
          hi[axis] = Below(rng, std::min(n, 4u));  // Clipped at min face.
        } else {
          lo[axis] = n - 1 - Below(rng, std::min(n, 4u));  // At max face.
        }
        if (n > 16) {
          // Keep brute force bounded: thin down one other axis too.
          const int other = (axis + 1) % 3;
          lo[other] = Below(rng, n - 4);
          hi[other] = lo[other] + 3;
        }
        CheckDecomposition(layout, lo, hi, CellVec{n, n, n}, bits);
      }
    }
  }
}

TEST(CurveRunsTest, RowMajorNonPowerOfTwoDims) {
  // kRowMajor keys are row-major indices over arbitrary dims (the curve
  // layouts always see a power-of-two cube; rowmajor sees the real
  // lattice) — z-columns must fuse across y/x exactly when key-adjacent.
  Rng rng(314);
  for (int i = 0; i < 40; ++i) {
    const CellVec dims{1 + Below(rng, 11), 1 + Below(rng, 11),
                       1 + Below(rng, 11)};
    CellVec lo, hi;
    for (int a = 0; a < 3; ++a) {
      lo[a] = Below(rng, dims[a]);
      hi[a] = lo[a] + Below(rng, dims[a] - lo[a]);
    }
    CheckDecomposition(CellLayout::kRowMajor, lo, hi, dims, /*bits=*/0);
  }
  // Full-z-column boxes fuse into exactly one run per contiguous (x, y)
  // stretch — the whole box when it spans full y depth as well.
  std::vector<CurveRun> runs;
  const CellVec dims{5, 7, 3};
  CurveRangeRuns(CellLayout::kRowMajor, CellVec{1, 0, 0}, CellVec{3, 6, 2},
                 dims, 0, &runs);
  ASSERT_EQ(runs.size(), 1u);  // y and z both full: x-contiguous fuses too.
  EXPECT_EQ(runs[0].begin, 1u * 7 * 3);
  EXPECT_EQ(runs[0].end, 4u * 7 * 3);
}

/// Ground-truth rank of a cell: its position in the key-sorted order of
/// the whole (possibly non-power-of-two) lattice.
std::vector<std::uint64_t> BruteForceRankSet(CellLayout layout,
                                             const CellVec& lo,
                                             const CellVec& hi,
                                             const CellVec& dims, int bits) {
  std::vector<std::uint64_t> all;
  for (std::uint32_t x = 0; x < dims[0]; ++x) {
    for (std::uint32_t y = 0; y < dims[1]; ++y) {
      for (std::uint32_t z = 0; z < dims[2]; ++z) {
        all.push_back(KeyOf(layout, x, y, z, dims, bits));
      }
    }
  }
  std::sort(all.begin(), all.end());
  std::vector<std::uint64_t> ranks;
  for (std::uint32_t x = lo[0]; x <= hi[0]; ++x) {
    for (std::uint32_t y = lo[1]; y <= hi[1]; ++y) {
      for (std::uint32_t z = lo[2]; z <= hi[2]; ++z) {
        const std::uint64_t key = KeyOf(layout, x, y, z, dims, bits);
        ranks.push_back(static_cast<std::uint64_t>(
            std::lower_bound(all.begin(), all.end(), key) - all.begin()));
      }
    }
  }
  std::sort(ranks.begin(), ranks.end());
  return ranks;
}

// The rank-space variant MemGrid's hot path consumes: sorted, disjoint,
// non-empty, maximal IN RANK SPACE (adjacent runs separated by at least
// one in-lattice cell outside the box — runs split only by out-of-lattice
// keys must have been fused), and the union must equal the brute-force
// rank set of the box's cells. Non-power-of-two dims are the interesting
// case for the curve layouts: the walk's lattice-clamp counting is what
// turns key gaps into correct rank gaps.
TEST(CurveRunsTest, RankRunsMatchBruteForceRanks) {
  Rng rng(315);
  for (const CellLayout layout : kLayouts) {
    for (int bits = 1; bits <= 6; ++bits) {
      const std::uint32_t n = 1u << bits;
      for (int i = 0; i < 12; ++i) {
        // Dims anywhere in (2^(bits-1), 2^bits] so `bits` is the codec
        // MemGrid would pick, including the power-of-two boundary.
        CellVec dims;
        for (int a = 0; a < 3; ++a) {
          dims[a] = n / 2 + 1 + Below(rng, n - n / 2);
        }
        CellVec lo, hi;
        for (int a = 0; a < 3; ++a) {
          lo[a] = Below(rng, dims[a]);
          hi[a] = lo[a] + Below(rng, std::min(dims[a] - lo[a], 9u));
        }
        SCOPED_TRACE(::testing::Message()
                     << ToString(layout) << " bits=" << bits << " dims="
                     << dims[0] << "x" << dims[1] << "x" << dims[2]
                     << " box=[" << lo[0] << "," << lo[1] << "," << lo[2]
                     << "]..[" << hi[0] << "," << hi[1] << "," << hi[2]
                     << "]");
        std::vector<CurveRun> runs;
        ASSERT_TRUE(CurveRangeRankRuns(layout, lo, hi, dims, bits, &runs));
        std::vector<std::uint64_t> got;
        for (std::size_t r = 0; r < runs.size(); ++r) {
          ASSERT_LT(runs[r].begin, runs[r].end) << "empty run " << r;
          if (r > 0) {
            ASSERT_LT(runs[r - 1].end, runs[r].begin)
                << "rank runs " << r - 1 << "/" << r
                << " out of order or fusable";
          }
          for (std::uint64_t v = runs[r].begin; v < runs[r].end; ++v) {
            got.push_back(v);
          }
        }
        ASSERT_EQ(got, BruteForceRankSet(layout, lo, hi, dims, bits));
      }
    }
  }
}

// The two anchor APIs the batch scheduler leans on must agree with the
// full decomposition: CurveRangeFirstRank is the first run's begin, and
// CurveRangeFirstCell names the cell that owns that rank (checked by
// decomposing the single-cell box [cell, cell], whose one run's begin is
// by definition the cell's rank).
TEST(CurveRunsTest, FirstRankAndFirstCellAgreeWithRankRuns) {
  Rng rng(808);
  for (const CellLayout layout : kLayouts) {
    for (int bits = 1; bits <= 6; ++bits) {
      const std::uint32_t n = 1u << bits;
      for (int i = 0; i < 12; ++i) {
        CellVec dims;
        for (int a = 0; a < 3; ++a) {
          dims[a] = n / 2 + 1 + Below(rng, n - n / 2);
        }
        CellVec lo, hi;
        for (int a = 0; a < 3; ++a) {
          lo[a] = Below(rng, dims[a]);
          hi[a] = lo[a] + Below(rng, std::min(dims[a] - lo[a], 9u));
        }
        SCOPED_TRACE(::testing::Message()
                     << ToString(layout) << " bits=" << bits << " dims="
                     << dims[0] << "x" << dims[1] << "x" << dims[2]
                     << " box=[" << lo[0] << "," << lo[1] << "," << lo[2]
                     << "]..[" << hi[0] << "," << hi[1] << "," << hi[2]
                     << "]");
        std::vector<CurveRun> runs;
        ASSERT_TRUE(CurveRangeRankRuns(layout, lo, hi, dims, bits, &runs));
        ASSERT_FALSE(runs.empty());
        std::uint64_t rank = ~std::uint64_t{0};
        ASSERT_TRUE(
            CurveRangeFirstRank(layout, lo, hi, dims, bits, &rank));
        EXPECT_EQ(rank, runs[0].begin);
        CellVec cell{~0u, ~0u, ~0u};
        ASSERT_TRUE(CurveRangeFirstCell(layout, lo, hi, bits, &cell));
        for (int a = 0; a < 3; ++a) {
          ASSERT_GE(cell[a], lo[a]) << "axis " << a;
          ASSERT_LE(cell[a], hi[a]) << "axis " << a;
        }
        std::vector<CurveRun> one;
        ASSERT_TRUE(
            CurveRangeRankRuns(layout, cell, cell, dims, bits, &one));
        ASSERT_EQ(one.size(), 1u);
        EXPECT_EQ(one[0].begin, runs[0].begin)
            << "first cell's rank is not the first run's begin";
      }
    }
  }
}

TEST(CurveRunsTest, RankRunsFuseAcrossOutOfLatticeKeys) {
  // A full-lattice box on non-power-of-two dims: in KEY space the curve
  // layouts fragment it (the cube has keys outside the lattice), in RANK
  // space it must always collapse to the single run [0, nx*ny*nz).
  const CellVec dims{5, 6, 7};
  const CellVec lo{0, 0, 0};
  const CellVec hi{4, 5, 6};
  for (const CellLayout layout : kLayouts) {
    std::vector<CurveRun> runs;
    ASSERT_TRUE(CurveRangeRankRuns(layout, lo, hi, dims, /*bits=*/3, &runs));
    ASSERT_EQ(runs.size(), 1u) << ToString(layout);
    EXPECT_EQ(runs[0].begin, 0u);
    EXPECT_EQ(runs[0].end, 5u * 6 * 7);
    if (layout != CellLayout::kRowMajor) {
      CurveRangeRuns(layout, lo, hi, dims, /*bits=*/3, &runs);
      EXPECT_GT(runs.size(), 1u)
          << ToString(layout)
          << ": key runs unexpectedly contiguous on a clipped lattice";
    }
  }
}

TEST(CurveRunsTest, MortonRunsMatchBigminGroundTruth) {
  // Cross-check one hand-computable Morton case: in a 4x4x4 cube the box
  // x in [0,1], y in [0,1], z in [0,3] is the two z-aligned octants, i.e.
  // keys [0,8) u [32,40) — precisely what one BIGMIN split at the z bit
  // yields.
  std::vector<CurveRun> runs;
  CurveRangeRuns(CellLayout::kMorton, CellVec{0, 0, 0}, CellVec{1, 1, 3},
                 CellVec{4, 4, 4}, /*bits=*/2, &runs);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].begin, 0u);
  EXPECT_EQ(runs[0].end, 8u);
  EXPECT_EQ(runs[1].begin, 32u);
  EXPECT_EQ(runs[1].end, 40u);
}

TEST(CurveRunsTest, HilbertRunCountBeatsCoordinateFragmentation) {
  // The point of the curve layouts: a cubic box decomposes into far fewer
  // rank runs than its z-column count (what the coordinate scan would
  // stream at best under rowmajor-in-curve-storage). Not a correctness
  // property, but regressing it silently would gut the PR.
  const int bits = 6;
  const std::uint32_t n = 1u << bits;
  std::vector<CurveRun> runs;
  CurveRangeRuns(CellLayout::kHilbert, CellVec{8, 8, 8},
                 CellVec{23, 23, 23}, CellVec{n, n, n}, bits, &runs);
  const std::size_t columns = 16 * 16;
  EXPECT_LT(runs.size(), columns / 2)
      << "Hilbert cube decomposition no longer beats column order";
}

}  // namespace
}  // namespace simspatial::core
