// CR-Tree: quantization soundness and differential tests.

#include "crtree/crtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/bruteforce.h"
#include "common/rng.h"
#include "datagen/neuron.h"
#include "rtree/rtree.h"

namespace simspatial::crtree {
namespace {

using datagen::GenerateClusteredBoxes;
using datagen::GenerateUniformBoxes;

const AABB kUniverse(Vec3(0, 0, 0), Vec3(100, 100, 100));

std::vector<ElementId> Sorted(std::vector<ElementId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(CRTreeTest, EmptyAndSingle) {
  CRTree t;
  t.Build({});
  std::vector<ElementId> out;
  t.RangeQuery(kUniverse, &out);
  EXPECT_TRUE(out.empty());
  t.KnnQuery(Vec3(0, 0, 0), 4, &out);
  EXPECT_TRUE(out.empty());

  std::vector<Element> one{Element(11, AABB(Vec3(5, 5, 5), Vec3(6, 6, 6)))};
  t.Build(one);
  t.RangeQuery(AABB(Vec3(0, 0, 0), Vec3(10, 10, 10)), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 11u);
}

TEST(CRTreeTest, NodeFitsCacheLines) {
  CRTree t;  // 768-byte nodes.
  const auto elems = GenerateUniformBoxes(1000, kUniverse, 0.1f, 0.5f);
  t.Build(elems);
  const CRTreeShape s = t.Shape();
  // (768 - 32) / 10 = 73 entries per node.
  EXPECT_EQ(s.capacity, 73u);
  EXPECT_EQ(s.bytes % 64, 0u);
}

TEST(CRTreeTest, RangeDifferentialAcrossShapes) {
  for (int dataset = 0; dataset < 3; ++dataset) {
    std::vector<Element> elems;
    switch (dataset) {
      case 0:
        elems = GenerateUniformBoxes(6000, kUniverse, 0.05f, 1.0f);
        break;
      case 1:
        elems = GenerateClusteredBoxes(6000, kUniverse, 12, 4.0f, 0.05f,
                                       0.8f);
        break;
      default:
        elems = datagen::GenerateNeuronsWithSize(6000).elements;
    }
    const AABB bounds = BoundsOf(elems);
    CRTree t;
    t.Build(elems);
    Rng rng(100 + dataset);
    for (int q = 0; q < 30; ++q) {
      const AABB query = AABB::FromCenterHalfExtent(
          rng.PointIn(bounds), rng.Uniform(0.5f, 10.0f));
      std::vector<ElementId> got;
      t.RangeQuery(query, &got);
      EXPECT_EQ(Sorted(got), ScanRange(elems, query))
          << "dataset " << dataset << " q" << q;
    }
  }
}

TEST(CRTreeTest, KnnDifferential) {
  const auto elems = GenerateUniformBoxes(5000, kUniverse, 0.05f, 0.6f);
  CRTree t;
  t.Build(elems);
  Rng rng(44);
  for (int q = 0; q < 20; ++q) {
    const Vec3 p = rng.PointIn(kUniverse);
    for (const std::size_t k : {1u, 10u, 40u}) {
      std::vector<ElementId> got;
      t.KnnQuery(p, k, &got);
      EXPECT_EQ(got, ScanKnn(elems, p, k)) << "q" << q << " k" << k;
    }
  }
}

TEST(CRTreeTest, QuantizationSurvivesSkewedRefBoxes) {
  // Pathological reference MBRs: long thin boxes exercise per-axis steps.
  std::vector<Element> elems;
  Rng rng(45);
  for (ElementId i = 0; i < 2000; ++i) {
    const Vec3 c(rng.Uniform(0, 100), rng.Uniform(0, 0.01f),
                 rng.Uniform(0, 100));
    elems.emplace_back(i, AABB::FromCenterHalfExtents(
                              c, Vec3(0.3f, 0.0001f, 0.3f)));
  }
  CRTree t;
  t.Build(elems);
  for (int q = 0; q < 20; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        Vec3(rng.Uniform(0, 100), 0.005f, rng.Uniform(0, 100)), 2.0f);
    std::vector<ElementId> got;
    t.RangeQuery(query, &got);
    EXPECT_EQ(Sorted(got), ScanRange(elems, query)) << "q" << q;
  }
}

TEST(CRTreeTest, CompressionShrinksFootprintVsRTree) {
  // The CR-Tree's raison d'être: more entries per cache-line-sized node.
  const auto elems = GenerateUniformBoxes(50000, kUniverse, 0.05f, 0.4f);
  CRTree cr;
  cr.Build(elems);
  rtree::RTree rt;
  rt.BulkLoadStr(elems);
  EXPECT_LT(cr.Shape().bytes, rt.Shape().bytes);
}

TEST(CRTreeTest, FewerBytesTouchedThanRTreePerQuery) {
  const auto elems = GenerateUniformBoxes(30000, kUniverse, 0.05f, 0.4f);
  CRTree cr;
  cr.Build(elems);
  rtree::RTree rt;
  rt.BulkLoadStr(elems);
  QueryCounters ccr;
  QueryCounters crt;
  std::vector<ElementId> out;
  Rng rng(46);
  for (int q = 0; q < 50; ++q) {
    const AABB query = AABB::FromCenterHalfExtent(
        rng.PointIn(kUniverse), 4.0f);
    cr.RangeQuery(query, &out, &ccr);
    rt.RangeQuery(query, &out, &crt);
  }
  EXPECT_LT(ccr.bytes_read, crt.bytes_read);
}

}  // namespace
}  // namespace simspatial::crtree
