// Spatial joins: every algorithm must produce the nested-loop reference
// pair set on every dataset shape and epsilon.

#include "join/spatial_join.h"

#include <gtest/gtest.h>

#include "common/bruteforce.h"
#include "common/rng.h"
#include "datagen/neuron.h"

namespace simspatial::join {
namespace {

using datagen::GenerateClusteredBoxes;
using datagen::GenerateNeuronsWithSize;
using datagen::GenerateUniformBoxes;

const AABB kUniverse(Vec3(0, 0, 0), Vec3(60, 60, 60));

std::vector<JoinPair> Reference(const std::vector<Element>& elems,
                                float eps) {
  auto pairs = NestedLoopSelfJoin(elems, eps);
  SortPairs(&pairs);
  return pairs;
}

struct JoinCase {
  const char* name;
  std::size_t n;
  int dataset;  // 0 uniform, 1 clustered, 2 neurons.
  float eps;
};

std::vector<Element> MakeDataset(const JoinCase& c) {
  switch (c.dataset) {
    case 0:
      return GenerateUniformBoxes(c.n, kUniverse, 0.2f, 0.8f);
    case 1:
      return GenerateClusteredBoxes(c.n, kUniverse, 6, 3.0f, 0.2f, 0.6f);
    default: {
      auto ds = GenerateNeuronsWithSize(c.n);
      return ds.elements;
    }
  }
}

class SelfJoinDifferentialTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(SelfJoinDifferentialTest, PlaneSweep) {
  const JoinCase& c = GetParam();
  const auto elems = MakeDataset(c);
  auto got = PlaneSweepSelfJoin(elems, c.eps);
  SortPairs(&got);
  EXPECT_EQ(got, Reference(elems, c.eps));
}

TEST_P(SelfJoinDifferentialTest, Pbsm) {
  const JoinCase& c = GetParam();
  const auto elems = MakeDataset(c);
  auto got = PbsmSelfJoin(elems, c.eps);
  SortPairs(&got);
  EXPECT_EQ(got, Reference(elems, c.eps));
}

TEST_P(SelfJoinDifferentialTest, Touch) {
  const JoinCase& c = GetParam();
  const auto elems = MakeDataset(c);
  auto got = TouchSelfJoin(elems, c.eps);
  SortPairs(&got);
  EXPECT_EQ(got, Reference(elems, c.eps));
}

TEST_P(SelfJoinDifferentialTest, GridJoin) {
  const JoinCase& c = GetParam();
  const auto elems = MakeDataset(c);
  auto got = GridSelfJoin(elems, c.eps);
  SortPairs(&got);
  EXPECT_EQ(got, Reference(elems, c.eps));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SelfJoinDifferentialTest,
    ::testing::Values(JoinCase{"uniform_overlap", 1500, 0, 0.0f},
                      JoinCase{"uniform_eps", 1500, 0, 0.5f},
                      JoinCase{"clustered_overlap", 1500, 1, 0.0f},
                      JoinCase{"clustered_eps", 1200, 1, 0.8f},
                      JoinCase{"neurons_synapse", 2000, 2, 0.5f},
                      JoinCase{"tiny", 3, 0, 0.0f},
                      JoinCase{"two_elements", 2, 0, 5.0f}),
    [](const ::testing::TestParamInfo<JoinCase>& info) {
      return info.param.name;
    });

// --- Binary joins -----------------------------------------------------------

TEST(BinaryJoinTest, AllAlgorithmsMatchReference) {
  const auto a = GenerateUniformBoxes(800, kUniverse, 0.3f, 1.0f, 111);
  auto b_raw = GenerateClusteredBoxes(700, kUniverse, 4, 4.0f, 0.3f, 1.0f,
                                      222);
  // Distinct id spaces keep pair semantics unambiguous.
  std::vector<Element> b;
  for (const Element& e : b_raw) {
    b.emplace_back(e.id + 10000, e.box);
  }
  for (const float eps : {0.0f, 0.7f}) {
    auto want = NestedLoopJoin(a, b, eps);
    SortPairs(&want);
    auto sweep = PlaneSweepJoin(a, b, eps);
    SortPairs(&sweep);
    EXPECT_EQ(sweep, want) << "sweep eps=" << eps;
    auto pbsm = PbsmJoin(a, b, eps);
    SortPairs(&pbsm);
    EXPECT_EQ(pbsm, want) << "pbsm eps=" << eps;
    auto touch = TouchJoin(a, b, eps);
    SortPairs(&touch);
    EXPECT_EQ(touch, want) << "touch eps=" << eps;
    auto gridj = GridJoin(a, b, eps);
    SortPairs(&gridj);
    EXPECT_EQ(gridj, want) << "grid eps=" << eps;
  }
}

TEST(BinaryJoinTest, EmptySidesYieldNoPairs) {
  const auto a = GenerateUniformBoxes(100, kUniverse, 0.2f, 0.5f);
  EXPECT_TRUE(PlaneSweepJoin(a, {}, 0.0f).empty());
  EXPECT_TRUE(PbsmJoin({}, a, 0.0f).empty());
  EXPECT_TRUE(TouchJoin(a, {}, 0.0f).empty());
  EXPECT_TRUE(GridJoin({}, {}, 0.0f).empty());
}

// --- Algorithmic properties the paper claims --------------------------------

TEST(JoinPropertyTest, EveryAlgorithmBeatsNestedLoopOnComparisons) {
  const auto elems = GenerateUniformBoxes(3000, kUniverse, 0.2f, 0.6f);
  QueryCounters nl, sweep, pbsm, touch, gridj;
  NestedLoopSelfJoin(elems, 0.0f, &nl);
  PlaneSweepSelfJoin(elems, 0.0f, &sweep);
  PbsmSelfJoin(elems, 0.0f, {}, &pbsm);
  TouchSelfJoin(elems, 0.0f, {}, &touch);
  GridSelfJoin(elems, 0.0f, {}, &gridj);
  EXPECT_LT(sweep.element_tests, nl.element_tests);
  EXPECT_LT(pbsm.element_tests, nl.element_tests);
  EXPECT_LT(touch.element_tests, nl.element_tests);
  EXPECT_LT(gridj.element_tests, nl.element_tests);
}

TEST(JoinPropertyTest, SweepComparesDistantObjects) {
  // §4.3: "The sweep line approach does not ensure that only spatially
  // close objects are compared." Construct a worst case: all elements
  // overlap in x but are spread in y — the sweep tests O(n^2) pairs while
  // the grid join stays near-linear.
  std::vector<Element> elems;
  for (ElementId i = 0; i < 400; ++i) {
    const float y = static_cast<float>(i) * 2.0f;
    elems.emplace_back(i, AABB(Vec3(0, y, 0), Vec3(50, y + 0.5f, 0.5f)));
  }
  QueryCounters sweep, gridj;
  PlaneSweepSelfJoin(elems, 0.0f, &sweep);
  GridSelfJoin(elems, 0.0f, {}, &gridj);
  EXPECT_GT(sweep.element_tests, gridj.element_tests * 5);
}

TEST(JoinPropertyTest, SmallCellShortcutSkipsTests) {
  // §4.3: "if the grid cell size is smaller than the smallest element size,
  // then objects in the same cell intersect by definition."
  std::vector<Element> elems;
  Rng rng(77);
  const AABB tight(Vec3(0, 0, 0), Vec3(10, 10, 10));
  for (ElementId i = 0; i < 300; ++i) {
    elems.emplace_back(i, AABB::FromCenterHalfExtent(rng.PointIn(tight),
                                                     3.0f));  // Big boxes.
  }
  GridJoinOptions opts;
  opts.cell_size = 0.5f;  // Much smaller than any element.
  opts.small_cell_shortcut = true;
  GridJoinStats stats;
  auto got = GridSelfJoin(elems, 0.0f, opts, nullptr, &stats);
  SortPairs(&got);
  // Cell far below element size violates the one-cell-neighbourhood
  // completeness bound, so compare only the shortcut accounting, not the
  // result set (the bench uses compliant sizes).
  EXPECT_GT(stats.skipped_tests, 0u);
  // Every shortcut-emitted pair must genuinely intersect.
  for (const auto& [lo, hi] : got) {
    EXPECT_TRUE(elems[lo].box.Intersects(elems[hi].box));
  }
}

TEST(JoinPropertyTest, GridJoinDefaultCellIsComplete) {
  // The default (max extent + eps) cell size must keep the join exact even
  // with very skewed element sizes.
  std::vector<Element> elems;
  Rng rng(78);
  for (ElementId i = 0; i < 600; ++i) {
    const float half = (i % 20 == 0) ? 4.0f : 0.2f;
    elems.emplace_back(
        i, AABB::FromCenterHalfExtent(rng.PointIn(kUniverse), half));
  }
  auto got = GridSelfJoin(elems, 0.3f);
  SortPairs(&got);
  EXPECT_EQ(got, Reference(elems, 0.3f));
}

}  // namespace
}  // namespace simspatial::join
